//! Streaming record sources: where build-pipeline input comes from.
//!
//! A [`RecordSource`] yields [`KeyphraseRecord`]s in bounded batches so
//! ingestion never materializes a whole corpus — the reader hands each
//! batch straight to the shard router, and backpressure from the shard
//! queues bounds total in-flight memory. Unparsable rows are **counted
//! and skipped**, per source ([`SourceStats`]), mirroring how a daily
//! aggregation job treats a few bad log lines: the build must not fail at
//! 3 a.m. over one torn row, but the report must say exactly what was
//! dropped. I/O errors, by contrast, are hard errors.
//!
//! Formats:
//! * **TSV** ([`TsvFileSource`]) — `text<TAB>leaf<TAB>search<TAB>recall`,
//!   the `graphex simulate` / `graphex build` interchange format.
//! * **NDJSON** ([`NdjsonFileSource`]) — one object per line with
//!   `text` / `leaf` / `search` / `recall` keys, the shape log pipelines
//!   emit.
//! * **marketsim** ([`MarketsimSource`]) — a seeded
//!   [`graphex_marketsim::ChurnCorpus`] generation, for tests, benches,
//!   and demos without any files.

use graphex_core::{KeyphraseRecord, LeafId};
use graphex_marketsim::ChurnCorpus;
use std::io::BufRead;
use std::path::Path;

/// How many parse-error messages a [`SourceStats`] retains verbatim.
const MAX_SAMPLED_ERRORS: usize = 3;

/// Per-source ingestion accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// Display name (file path, `marketsim:<preset>`, …).
    pub name: String,
    /// Records successfully yielded.
    pub records: u64,
    /// Non-record lines skipped by design (blank lines, `#` comments).
    pub skipped: u64,
    /// Rows dropped as unparsable.
    pub parse_errors: u64,
    /// First few parse-error messages, with line numbers.
    pub error_sample: Vec<String>,
}

impl SourceStats {
    fn named(name: impl Into<String>) -> Self {
        Self { name: name.into(), ..Self::default() }
    }

    fn record_error(&mut self, lineno: u64, what: &str) {
        self.parse_errors += 1;
        if self.error_sample.len() < MAX_SAMPLED_ERRORS {
            self.error_sample.push(format!("line {lineno}: {what}"));
        }
    }
}

/// A streaming producer of keyphrase records.
pub trait RecordSource: Send {
    /// Display name for reports.
    fn name(&self) -> &str;

    /// Pulls up to `max` records into `out` (which is cleared first).
    /// An empty `out` on return means the source is exhausted. Parse
    /// errors are skipped and accounted in [`RecordSource::stats`];
    /// `Err` is reserved for I/O failures.
    fn next_batch(&mut self, max: usize, out: &mut Vec<KeyphraseRecord>) -> Result<(), String>;

    /// Accounting so far (final once exhausted).
    fn stats(&self) -> &SourceStats;
}

// ====================================================================
// TSV
// ====================================================================

/// Parses one TSV record line:
/// `text<TAB>leaf_id<TAB>search_count<TAB>recall_count`.
pub fn parse_tsv_line(line: &str) -> Result<KeyphraseRecord, String> {
    let mut cols = line.split('\t');
    let text = cols.next().filter(|t| !t.is_empty()).ok_or("empty keyphrase text")?;
    let leaf: u32 =
        cols.next().ok_or("missing leaf id")?.parse().map_err(|_| "leaf id is not a number")?;
    let search: u32 = cols
        .next()
        .ok_or("missing search count")?
        .parse()
        .map_err(|_| "search count is not a number")?;
    let recall: u32 = cols
        .next()
        .ok_or("missing recall count")?
        .parse()
        .map_err(|_| "recall count is not a number")?;
    if cols.next().is_some() {
        return Err("too many columns".into());
    }
    Ok(KeyphraseRecord::new(text, LeafId(leaf), search, recall))
}

/// Line-by-line record reader over any [`BufRead`], parameterized by the
/// per-line parser (TSV or NDJSON share everything else).
struct LineSource<R: BufRead> {
    reader: R,
    stats: SourceStats,
    lineno: u64,
    parse: fn(&str) -> Result<KeyphraseRecord, String>,
    line: String,
}

impl<R: BufRead> LineSource<R> {
    fn new(name: String, reader: R, parse: fn(&str) -> Result<KeyphraseRecord, String>) -> Self {
        Self { reader, stats: SourceStats::named(name), lineno: 0, parse, line: String::new() }
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<KeyphraseRecord>) -> Result<(), String> {
        out.clear();
        while out.len() < max {
            self.line.clear();
            let n = self
                .reader
                .read_line(&mut self.line)
                .map_err(|e| format!("{}: read error at line {}: {e}", self.stats.name, self.lineno + 1))?;
            if n == 0 {
                return Ok(()); // EOF
            }
            self.lineno += 1;
            let trimmed = self.line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                self.stats.skipped += 1;
                continue;
            }
            match (self.parse)(trimmed) {
                Ok(rec) => {
                    self.stats.records += 1;
                    out.push(rec);
                }
                Err(what) => self.stats.record_error(self.lineno, &what),
            }
        }
        Ok(())
    }
}

/// TSV file source (`text<TAB>leaf<TAB>search<TAB>recall` rows; blank
/// lines and `#` comments skipped).
pub struct TsvFileSource {
    inner: LineSource<std::io::BufReader<std::fs::File>>,
}

impl TsvFileSource {
    pub fn open(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let file =
            std::fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
        Ok(Self {
            inner: LineSource::new(
                path.display().to_string(),
                std::io::BufReader::new(file),
                parse_tsv_line,
            ),
        })
    }
}

impl RecordSource for TsvFileSource {
    fn name(&self) -> &str {
        &self.inner.stats.name
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<KeyphraseRecord>) -> Result<(), String> {
        self.inner.next_batch(max, out)
    }

    fn stats(&self) -> &SourceStats {
        &self.inner.stats
    }
}

// ====================================================================
// NDJSON
// ====================================================================

/// Parses one NDJSON record:
/// `{"text": "...", "leaf": N, "search": N, "recall": N}` (key order
/// free; unknown keys rejected; `search_count`/`recall_count` accepted as
/// aliases).
pub fn parse_ndjson_line(line: &str) -> Result<KeyphraseRecord, String> {
    let mut scanner = JsonScanner::new(line);
    scanner.expect('{')?;
    let mut text: Option<String> = None;
    let mut leaf: Option<u32> = None;
    let mut search: Option<u32> = None;
    let mut recall: Option<u32> = None;
    loop {
        scanner.skip_ws();
        if scanner.eat('}') {
            break;
        }
        let key = scanner.string()?;
        scanner.expect(':')?;
        match key.as_str() {
            "text" => text = Some(scanner.string()?),
            "leaf" => leaf = Some(scanner.u32()?),
            "search" | "search_count" => search = Some(scanner.u32()?),
            "recall" | "recall_count" => recall = Some(scanner.u32()?),
            other => return Err(format!("unknown key {other:?}")),
        }
        scanner.skip_ws();
        if !scanner.eat(',') && !scanner.peek_is('}') {
            return Err("expected ',' or '}'".into());
        }
    }
    scanner.skip_ws();
    if !scanner.at_end() {
        return Err("trailing content after object".into());
    }
    let text = text.ok_or("missing \"text\"")?;
    if text.is_empty() {
        return Err("empty keyphrase text".into());
    }
    Ok(KeyphraseRecord::new(
        text,
        LeafId(leaf.ok_or("missing \"leaf\"")?),
        search.ok_or("missing \"search\"")?,
        recall.ok_or("missing \"recall\"")?,
    ))
}

/// Minimal scanner for the flat NDJSON record shape: strings (with
/// escapes) and unsigned integers only — records are produced by log
/// pipelines, not humans, so nesting is out of scope by design.
struct JsonScanner<'a> {
    rest: &'a str,
}

impl<'a> JsonScanner<'a> {
    fn new(s: &'a str) -> Self {
        Self { rest: s }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn at_end(&self) -> bool {
        self.rest.is_empty()
    }

    fn peek_is(&self, c: char) -> bool {
        self.rest.starts_with(c)
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if let Some(stripped) = self.rest.strip_prefix(c) {
            self.rest = stripped;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!("expected {c:?}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'u')) => {
                        let hi = self.hex4(&mut chars)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: standard JSON emitters encode
                            // non-BMP chars as a \uXXXX\uXXXX pair.
                            match (chars.next(), chars.next()) {
                                (Some((_, '\\')), Some((_, 'u'))) => {}
                                _ => return Err("unpaired surrogate".into()),
                            }
                            let lo = self.hex4(&mut chars)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("unpaired surrogate".into());
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }

    fn hex4(&self, chars: &mut std::str::CharIndices<'_>) -> Result<u32, String> {
        let start = chars.next().map(|(j, _)| j).ok_or("truncated \\u escape")?;
        for _ in 0..3 {
            chars.next().ok_or("truncated \\u escape")?;
        }
        let hex = self.rest.get(start..start + 4).ok_or("bad \\u escape")?;
        u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".into())
    }

    fn u32(&mut self) -> Result<u32, String> {
        self.skip_ws();
        let end = self.rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(self.rest.len());
        if end == 0 {
            return Err("expected an unsigned integer".into());
        }
        let (digits, rest) = self.rest.split_at(end);
        self.rest = rest;
        digits.parse().map_err(|_| format!("integer out of range: {digits}"))
    }
}

/// NDJSON file source (one record object per line; blank lines and `#`
/// comments skipped).
pub struct NdjsonFileSource {
    inner: LineSource<std::io::BufReader<std::fs::File>>,
}

impl NdjsonFileSource {
    pub fn open(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let file =
            std::fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
        Ok(Self {
            inner: LineSource::new(
                path.display().to_string(),
                std::io::BufReader::new(file),
                parse_ndjson_line,
            ),
        })
    }
}

impl RecordSource for NdjsonFileSource {
    fn name(&self) -> &str {
        &self.inner.stats.name
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<KeyphraseRecord>) -> Result<(), String> {
        self.inner.next_batch(max, out)
    }

    fn stats(&self) -> &SourceStats {
        &self.inner.stats
    }
}

/// Opens a file source, picking the format from the extension:
/// `.ndjson` / `.jsonl` → NDJSON, everything else → TSV.
pub fn open_file_source(path: impl AsRef<Path>) -> Result<Box<dyn RecordSource>, String> {
    let path = path.as_ref();
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    if ext.eq_ignore_ascii_case("ndjson") || ext.eq_ignore_ascii_case("jsonl") {
        Ok(Box::new(NdjsonFileSource::open(path)?))
    } else {
        Ok(Box::new(TsvFileSource::open(path)?))
    }
}

// ====================================================================
// marketsim
// ====================================================================

/// A [`graphex_marketsim::ChurnCorpus`] generation as a record source.
pub struct MarketsimSource {
    stats: SourceStats,
    records: std::vec::IntoIter<KeyphraseRecord>,
}

impl MarketsimSource {
    /// Snapshots the corpus's *current* generation. The corpus stays with
    /// the caller, who can `advance()` it and take another source for the
    /// next build.
    pub fn new(corpus: &ChurnCorpus) -> Self {
        let name = format!(
            "marketsim:{}:gen{}",
            corpus.marketplace().spec.name.to_lowercase(),
            corpus.generation()
        );
        Self { stats: SourceStats::named(name), records: corpus.records().into_iter() }
    }
}

impl RecordSource for MarketsimSource {
    fn name(&self) -> &str {
        &self.stats.name
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<KeyphraseRecord>) -> Result<(), String> {
        out.clear();
        out.extend(self.records.by_ref().take(max));
        self.stats.records += out.len() as u64;
        Ok(())
    }

    fn stats(&self) -> &SourceStats {
        &self.stats
    }
}

/// In-memory source (tests and programmatic callers).
pub struct VecSource {
    stats: SourceStats,
    records: std::vec::IntoIter<KeyphraseRecord>,
}

impl VecSource {
    pub fn new(name: impl Into<String>, records: Vec<KeyphraseRecord>) -> Self {
        Self { stats: SourceStats::named(name), records: records.into_iter() }
    }
}

impl RecordSource for VecSource {
    fn name(&self) -> &str {
        &self.stats.name
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<KeyphraseRecord>) -> Result<(), String> {
        out.clear();
        out.extend(self.records.by_ref().take(max));
        self.stats.records += out.len() as u64;
        Ok(())
    }

    fn stats(&self) -> &SourceStats {
        &self.stats
    }
}

/// Wraps an NRT overlay journal as a record source (the compaction
/// ingest path): the journal's raw upsert records join the build's other
/// sources, so overlay-then-compact rides the pipeline's determinism
/// contract — feeding the same records any other way produces the same
/// snapshot bytes.
pub fn overlay_journal_source(journal: &graphex_serving::OverlayJournal) -> VecSource {
    VecSource::new(format!("overlay-journal:upto{}", journal.upto), journal.records())
}

/// Opens a serialized overlay journal file (the `GET /v1/overlay/journal`
/// export / `graphex overlay status --journal` output) as a record
/// source. Returns the source and the journal's `upto` sequence — the
/// drain watermark to pass back to the server once the compacted
/// snapshot is published.
pub fn open_overlay_journal_source(
    path: impl AsRef<Path>,
) -> Result<(Box<dyn RecordSource>, u64), String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let journal = graphex_serving::OverlayJournal::parse(&text)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let upto = journal.upto;
    Ok((Box::new(overlay_journal_source(&journal)), upto))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_line_parses_and_rejects() {
        let rec = parse_tsv_line("gaming headphones\t42\t800\t700").unwrap();
        assert_eq!(rec.text, "gaming headphones");
        assert_eq!(rec.leaf, LeafId(42));
        assert!(parse_tsv_line("text only").is_err());
        assert!(parse_tsv_line("text\tx\t1\t2").is_err());
        assert!(parse_tsv_line("a\t1\t2\t3\t4").is_err());
    }

    #[test]
    fn overlay_journal_file_round_trips_into_a_source() {
        let store = graphex_serving::OverlayStore::new();
        let base = graphex_core::GraphExBuilder::new({
            let mut c = graphex_core::GraphExConfig::default();
            c.curation.min_search_count = 0;
            c
        })
        .add_record(KeyphraseRecord::new("base widget", LeafId(1), 10, 1))
        .build()
        .unwrap();
        store
            .apply(
                &base,
                &[
                    KeyphraseRecord::new("overlay widget", LeafId(1), 20, 2),
                    KeyphraseRecord::new("novel gadget", LeafId(9), 30, 3),
                ],
            )
            .unwrap();
        let path = std::env::temp_dir()
            .join(format!("graphex-journal-src-{}.journal", std::process::id()));
        std::fs::write(&path, store.export_journal().to_text()).unwrap();

        let (mut source, upto) = open_overlay_journal_source(&path).unwrap();
        assert_eq!(upto, 2);
        let mut out = Vec::new();
        source.next_batch(16, &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].text, "overlay widget");
        assert_eq!(out[1].leaf, LeafId(9));
        assert_eq!(source.stats().records, 2);

        std::fs::write(&path, "not a journal\n").unwrap();
        assert!(open_overlay_journal_source(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ndjson_line_parses_and_rejects() {
        let rec = parse_ndjson_line(
            r#"{"text": "usb c charger", "leaf": 9, "search": 500, "recall": 50}"#,
        )
        .unwrap();
        assert_eq!(rec.text, "usb c charger");
        assert_eq!(rec.leaf, LeafId(9));
        assert_eq!((rec.search_count, rec.recall_count), (500, 50));

        // alias keys + reordering + escapes
        let rec = parse_ndjson_line(
            r#"{"recall_count":1,"search_count":2,"leaf":3,"text":"a \"b\" c"}"#,
        )
        .unwrap();
        assert_eq!(rec.text, "a \"b\" c");
        assert_eq!((rec.search_count, rec.recall_count), (2, 1));

        // Surrogate pairs (how ensure_ascii JSON emitters encode non-BMP
        // chars) must decode, not drop the record.
        let rec = parse_ndjson_line(
            r#"{"text":"\ud83d\udca5 sale \u00e9","leaf":1,"search":2,"recall":3}"#,
        )
        .unwrap();
        assert_eq!(rec.text, "💥 sale é");

        for bad in [
            "",
            "{}",
            r#"{"text":"a"}"#,
            r#"{"text":"\ud83d oops","leaf":1,"search":2,"recall":3}"#,
            r#"{"text":"\ud83da","leaf":1,"search":2,"recall":3}"#,
            r#"{"text":"a","leaf":1,"search":2,"recall":3} trailing"#,
            r#"{"text":"a","leaf":-1,"search":2,"recall":3}"#,
            r#"{"text":"a","leaf":1,"search":2,"recall":3,"extra":4}"#,
            r#"{"text":"","leaf":1,"search":2,"recall":3}"#,
            r#"{"text":"a","leaf":99999999999,"search":2,"recall":3}"#,
        ] {
            assert!(parse_ndjson_line(bad).is_err(), "accepted: {bad}");
        }
    }

    fn tmpfile(name: &str, content: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("graphex-pipeline-src-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path
    }

    fn drain(source: &mut dyn RecordSource) -> Vec<KeyphraseRecord> {
        let mut all = Vec::new();
        let mut batch = Vec::new();
        loop {
            source.next_batch(3, &mut batch).unwrap();
            if batch.is_empty() {
                return all;
            }
            all.append(&mut batch);
        }
    }

    #[test]
    fn tsv_source_counts_errors_and_skips() {
        let path = tmpfile(
            "mixed.tsv",
            "# header\n\na b\t1\t5\t6\nbroken line\nc d\t2\t7\t8\ne\tx\t1\t1\n",
        );
        let mut source = TsvFileSource::open(&path).unwrap();
        let records = drain(&mut source);
        assert_eq!(records.len(), 2);
        let stats = source.stats();
        assert_eq!(stats.records, 2);
        assert_eq!(stats.skipped, 2);
        assert_eq!(stats.parse_errors, 2);
        assert_eq!(stats.error_sample.len(), 2);
        assert!(stats.error_sample[0].contains("line 4"), "{:?}", stats.error_sample);
    }

    #[test]
    fn ndjson_source_reads_batches() {
        let lines: Vec<String> = (0..7)
            .map(|i| format!(r#"{{"text":"phrase {i}","leaf":{},"search":10,"recall":1}}"#, i % 2))
            .collect();
        let path = tmpfile("batch.ndjson", &(lines.join("\n") + "\nnot json\n"));
        let mut source = NdjsonFileSource::open(&path).unwrap();
        let records = drain(&mut source);
        assert_eq!(records.len(), 7);
        assert_eq!(source.stats().parse_errors, 1);
    }

    #[test]
    fn open_file_source_picks_format_by_extension() {
        let tsv = tmpfile("by-ext.tsv", "a b\t1\t5\t6\n");
        let ndjson = tmpfile("by-ext.ndjson", r#"{"text":"a b","leaf":1,"search":5,"recall":6}"#);
        for path in [tsv, ndjson] {
            let mut source = open_file_source(&path).unwrap();
            assert_eq!(drain(source.as_mut()).len(), 1, "{}", path.display());
        }
        assert!(open_file_source("/nonexistent/x.tsv").is_err());
    }

    #[test]
    fn marketsim_source_is_deterministic() {
        let corpus = ChurnCorpus::new(graphex_marketsim::CategorySpec::tiny(5), 0.1);
        let a = drain(&mut MarketsimSource::new(&corpus));
        let b = drain(&mut MarketsimSource::new(&corpus));
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }
}

//! Per-shard snapshot emission: partition a built model by
//! `leaf % shards` into independently publishable snapshots — the build
//! side of the scale-out serving tier (`graphex_server::router`).
//!
//! Each [`ShardSnapshot`] is a complete, self-contained `GEXM v2` model:
//! the shard's own leaf graphs **plus the global meta-fallback graph**,
//! so a backend serving one shard answers `MetaFallback` and
//! `UnknownLeaf` requests exactly like the monolith would — the
//! `sharded ≡ monolith` property the cluster tests pin holds for every
//! outcome, not just `ExactLeaf`.
//!
//! Emission reuses the delta-borrow machinery: every leaf assembly is
//! recovered from the already-built model with
//! [`LeafAssembly::from_model`] (exact, by the leaf-local identity
//! invariant) and re-merged in ascending leaf order. A corollary pinned
//! by `tests/sharding.rs`: emitting **one** shard reproduces the
//! monolithic snapshot byte for byte.
//!
//! Each shard carries its own `BUILDINFO` whose `leaves` table is the
//! monolith's restricted to the shard (so per-shard delta builds and
//! fingerprint audits keep working) plus a `shard <index> <of>` line.

use crate::build::{BuildOutput, PipelineError, PipelineResult};
use crate::manifest::{BuildManifest, BUILDINFO_FILE};
use bytes::Bytes;
use graphex_core::assembly::{LeafAssembly, ModelAssembler};
use graphex_core::{serialize, GraphExConfig, GraphExModel, LeafId};
use graphex_serving::{ModelRegistry, SnapshotMeta};
use std::path::{Path, PathBuf};

/// The shard owning `leaf` under a `shards`-way partition.
pub fn shard_of(leaf: LeafId, shards: u32) -> u32 {
    leaf.0 % shards
}

/// The conventional per-shard registry root under a cluster directory:
/// `<cluster_root>/shard-<index>`.
pub fn shard_root(cluster_root: impl AsRef<Path>, index: u32) -> PathBuf {
    cluster_root.as_ref().join(format!("shard-{index}"))
}

/// One shard's complete snapshot: serialized bytes, the in-memory model,
/// and its `BUILDINFO` manifest.
#[derive(Debug)]
pub struct ShardSnapshot {
    /// Which shard this is (`0..shards`).
    pub index: u32,
    /// Total shards in the partition.
    pub shards: u32,
    /// `GEXM v2` snapshot bytes for this shard.
    pub bytes: Bytes,
    /// The shard model (the shard's leaves + the global fallback).
    pub model: GraphExModel,
    pub manifest: BuildManifest,
}

impl ShardSnapshot {
    /// Publishes this shard (+ `BUILDINFO` sidecar) into a registry,
    /// through the same admission pipeline as a monolithic snapshot.
    pub fn publish(&self, registry: &ModelRegistry, note: &str) -> PipelineResult<SnapshotMeta> {
        let manifest_text = self.manifest.render();
        Ok(registry.publish_with_files(
            &self.bytes,
            note,
            &[(BUILDINFO_FILE, manifest_text.as_bytes())],
        )?)
    }
}

impl BuildOutput {
    /// [`emit_shards`] over this build's model + manifest.
    pub fn emit_shards(&self, shards: u32) -> PipelineResult<Vec<ShardSnapshot>> {
        emit_shards(&self.model, &self.manifest, shards)
    }
}

/// Partitions `model` into `shards` per-shard snapshots
/// (`leaf % shards`), each carrying the global meta-fallback graph and a
/// shard-scoped copy of `manifest`.
///
/// Every shard must own at least one leaf: an empty shard would be an
/// unservable snapshot (registry admission warm-up has nothing to
/// probe), which means the shard count is wrong for this corpus — that
/// is an error here, not a latent failure at publish time.
pub fn emit_shards(
    model: &GraphExModel,
    manifest: &BuildManifest,
    shards: u32,
) -> PipelineResult<Vec<ShardSnapshot>> {
    if shards == 0 {
        return Err(PipelineError::Shard("shard count must be at least 1".into()));
    }
    let mut leaves: Vec<LeafId> = model.leaf_ids().collect();
    leaves.sort_unstable();

    // The shard models must be rebuilt with the same config knobs that
    // shaped the monolith; everything that matters at assembly time is
    // recoverable from the model itself.
    let config = GraphExConfig {
        alignment: model.alignment(),
        stemming: model.stemming(),
        build_meta_fallback: model.has_fallback(),
        ..GraphExConfig::default()
    };

    let fallback = model
        .has_fallback()
        .then(|| LeafAssembly::from_model_fallback(model).expect("has_fallback checked"));

    let mut out = Vec::with_capacity(shards as usize);
    for index in 0..shards {
        let owned: Vec<LeafId> =
            leaves.iter().copied().filter(|leaf| shard_of(*leaf, shards) == index).collect();
        if owned.is_empty() {
            return Err(PipelineError::Shard(format!(
                "shard {index} of {shards} owns no leaves — no leaf id ≡ {index} (mod {shards}); \
                 an empty shard cannot pass registry admission, pick a different shard count"
            )));
        }
        let mut assembler = ModelAssembler::new(&config);
        for leaf in &owned {
            let assembly =
                LeafAssembly::from_model(model, *leaf).expect("leaf listed by the model");
            assembler.add_leaf(*leaf, &assembly);
        }
        if let Some(fallback) = &fallback {
            assembler.set_fallback(fallback);
        }
        let shard_model = assembler.finish();
        let bytes = serialize::to_bytes(&shard_model);
        let snapshot_checksum = serialize::checksum(&bytes);
        let shard_manifest = BuildManifest {
            config_fingerprint: manifest.config_fingerprint,
            snapshot_checksum,
            fallback_fingerprint: manifest.fallback_fingerprint,
            records_in: manifest.records_in,
            parse_errors: manifest.parse_errors,
            curation: manifest.curation,
            shard: Some((index, shards)),
            leaves: owned
                .iter()
                .filter_map(|leaf| manifest.leaves.get(&leaf.0).map(|fp| (leaf.0, *fp)))
                .collect(),
        };
        out.push(ShardSnapshot {
            index,
            shards,
            bytes,
            model: shard_model,
            manifest: shard_manifest,
        });
    }
    Ok(out)
}

/// Publishes every shard into `shard_root(cluster_root, i)`, creating
/// the per-shard registries as needed. Returns the published metas in
/// shard order.
pub fn publish_shards(
    snapshots: &[ShardSnapshot],
    cluster_root: impl AsRef<Path>,
    note: &str,
) -> PipelineResult<Vec<SnapshotMeta>> {
    let cluster_root = cluster_root.as_ref();
    let mut metas = Vec::with_capacity(snapshots.len());
    for shard in snapshots {
        let registry = ModelRegistry::open(shard_root(cluster_root, shard.index))?;
        metas.push(shard.publish(&registry, note)?);
    }
    Ok(metas)
}

//! The build orchestrator: ingest → shard → assemble → merge → snapshot.
//!
//! ```text
//!  sources ──► ingest thread ──► per-shard bounded queues (backpressure)
//!                                      │ leaf.0 % jobs
//!                                      ▼
//!                     shard workers: Curator → canonicalize →
//!                     per-leaf fingerprint → LeafAssembly
//!                     (built fresh, or borrowed from the delta base
//!                      when the fingerprint is unchanged)
//!                                      │
//!                                      ▼
//!            merge (ascending leaf order) + meta-fallback assembly
//!                                      │
//!                                      ▼
//!             GEXM v2 bytes + BUILDINFO manifest + BuildReport
//! ```
//!
//! Determinism contract (pinned by `tests/determinism.rs` and the CI
//! delta-equivalence gate): for the same record multiset and config, the
//! produced snapshot is **byte-identical** across (a) worker counts,
//! (b) record arrival order, (c) full vs. delta builds. Everything that
//! could depend on scheduling is funneled through the canonical order —
//! shards own disjoint leaf sets, per-leaf assembly is a pure function of
//! the leaf's curated records, and the merge walks leaves in ascending
//! id order on one thread.

use crate::manifest::{buildinfo_path_for, BuildManifest, BUILDINFO_FILE};
use crate::queue::Bounded;
use crate::source::{RecordSource, SourceStats};
use bytes::Bytes;
use graphex_core::assembly::{
    canonicalize, combine_fingerprints, config_fingerprint, leaf_fingerprint, leaf_runs,
    AssemblyContext, LeafAssembly, ModelAssembler,
};
use graphex_core::curation::Curator;
use graphex_core::{
    serialize, CurationStats, GraphExConfig, GraphExError, GraphExModel, KeyphraseRecord, LeafId,
};
use graphex_serving::{ModelRegistry, RegistryError, SnapshotMeta};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Errors surfaced by the build pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Source I/O failure (not a parse error — those are accounted, not
    /// fatal, unless [`BuildPlan::strict`]).
    Source(String),
    /// [`BuildPlan::strict`] build hit parse errors.
    Strict(String),
    /// Model construction failed (e.g. nothing survived curation).
    Model(GraphExError),
    /// Delta base snapshot / manifest problems.
    Delta(String),
    /// Registry publish failures.
    Registry(RegistryError),
    /// Per-shard emission problems (e.g. a shard that owns no leaves).
    Shard(String),
    Io(std::io::Error),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Source(e) => write!(f, "source error: {e}"),
            Self::Strict(e) => write!(f, "strict build: {e}"),
            Self::Model(e) => write!(f, "build failed: {e}"),
            Self::Delta(e) => write!(f, "delta base: {e}"),
            Self::Registry(e) => write!(f, "publish failed: {e}"),
            Self::Shard(e) => write!(f, "shard emission: {e}"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<GraphExError> for PipelineError {
    fn from(e: GraphExError) -> Self {
        Self::Model(e)
    }
}

impl From<RegistryError> for PipelineError {
    fn from(e: RegistryError) -> Self {
        Self::Registry(e)
    }
}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Convenience alias.
pub type PipelineResult<T> = std::result::Result<T, PipelineError>;

/// A previous snapshot + its build manifest: what incremental builds
/// borrow unchanged leaves from.
#[derive(Debug)]
pub struct DeltaBase {
    model: GraphExModel,
    manifest: BuildManifest,
    /// Where the base was loaded from (for reports).
    pub source: String,
}

impl DeltaBase {
    /// Loads a delta base from:
    /// * a snapshot **file** (`model.gexm`) with its `BUILDINFO` either
    ///   beside it in the same directory or as `<file>.buildinfo`;
    /// * a snapshot **directory** (a registry version dir) holding
    ///   `model.gexm` + `BUILDINFO`;
    /// * a **registry root**, resolving the pinned (`CURRENT`) version.
    ///
    /// The manifest's recorded snapshot checksum must match the loaded
    /// bytes — a stale or mixed-up `BUILDINFO` must never silence a leaf
    /// rebuild.
    pub fn load(path: impl AsRef<Path>) -> PipelineResult<Self> {
        let path = path.as_ref();
        let snapshot = Self::resolve_snapshot_path(path)?;
        let buildinfo = buildinfo_path_for(&snapshot);
        let manifest = BuildManifest::load(&buildinfo).map_err(PipelineError::Delta)?;
        let bytes = serialize::read_aligned(&snapshot).map_err(PipelineError::Model)?;
        let checksum = serialize::checksum(&bytes);
        if checksum != manifest.snapshot_checksum {
            return Err(PipelineError::Delta(format!(
                "{} records checksum {:016x} but {} hashes to {checksum:016x} — stale BUILDINFO?",
                buildinfo.display(),
                manifest.snapshot_checksum,
                snapshot.display(),
            )));
        }
        let model = serialize::from_shared(bytes).map_err(PipelineError::Model)?;
        Ok(Self { model, manifest, source: snapshot.display().to_string() })
    }

    fn resolve_snapshot_path(path: &Path) -> PipelineResult<PathBuf> {
        if path.is_file() {
            return Ok(path.to_path_buf());
        }
        if path.join("model.gexm").is_file() {
            return Ok(path.join("model.gexm"));
        }
        // A registry root: resolve the pinned version without activating.
        let registry = ModelRegistry::attach(path)?;
        let version = registry.pinned_version().ok_or_else(|| {
            PipelineError::Delta(format!("{}: no snapshot to base a delta on", path.display()))
        })?;
        Ok(registry.root().join(version.to_string()).join("model.gexm"))
    }

    /// The base snapshot's whole-file checksum.
    pub fn checksum(&self) -> u64 {
        self.manifest.snapshot_checksum
    }
}

/// Everything a build run needs beyond its sources.
#[derive(Debug)]
pub struct BuildPlan {
    pub config: GraphExConfig,
    /// Shard workers (`0` = all available cores).
    pub jobs: usize,
    /// Records per ingest batch / queue item.
    pub batch: usize,
    /// Bounded queue depth per shard, in batches (backpressure bound).
    pub queue_depth: usize,
    /// Fail the build on any parse error instead of count-and-skip.
    pub strict: bool,
    /// Previous snapshot to borrow unchanged leaves from.
    pub delta: Option<DeltaBase>,
}

impl BuildPlan {
    pub fn new(config: GraphExConfig) -> Self {
        Self { config, jobs: 0, batch: 4096, queue_depth: 4, strict: false, delta: None }
    }

    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    pub fn strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    pub fn delta(mut self, base: DeltaBase) -> Self {
        self.delta = Some(base);
        self
    }
}

/// What a build run did (the `graphex build` output payload).
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// Raw records ingested across all sources.
    pub records_in: u64,
    /// Unparsable rows skipped across all sources.
    pub parse_errors: u64,
    /// Per-source accounting.
    pub sources: Vec<SourceStats>,
    /// What curation kept and dropped.
    pub curation: CurationStats,
    /// Leaves in the built model.
    pub leaves_total: usize,
    /// Leaves constructed from records this run.
    pub leaves_built: usize,
    /// Leaves borrowed unchanged from the delta base.
    pub leaves_reused: usize,
    /// Whether the meta-fallback graph was borrowed from the delta base.
    pub fallback_reused: bool,
    /// Checksum of the delta base snapshot, if one was used.
    pub delta_base: Option<u64>,
    /// Why a provided delta base was ignored, if it was.
    pub delta_discarded: Option<String>,
    /// Shard workers used.
    pub jobs: usize,
    /// Distinct keyphrases / tokens in the model.
    pub keyphrases: usize,
    pub tokens: usize,
    /// Serialized snapshot size and whole-file checksum: the value
    /// `graphex model inspect` cross-checks against `BUILDINFO`.
    pub snapshot_bytes: usize,
    pub snapshot_checksum: u64,
    /// Registry version if the build was published.
    pub published_version: Option<u64>,
    /// Wall time of the build (ingest through serialize).
    pub wall_ms: u64,
}

/// A finished build: serialized snapshot + manifest + report.
#[derive(Debug)]
pub struct BuildOutput {
    /// `GEXM v2` snapshot bytes.
    pub bytes: Bytes,
    /// The parsed model (already in memory — callers may serve it
    /// directly or drop it).
    pub model: GraphExModel,
    pub manifest: BuildManifest,
    pub report: BuildReport,
}

impl BuildOutput {
    /// Writes `model.gexm` + its `.buildinfo` sibling. Returns the
    /// buildinfo path.
    pub fn write_to(&self, snapshot: impl AsRef<Path>) -> PipelineResult<PathBuf> {
        let snapshot = snapshot.as_ref();
        serialize::write_bytes_to(&self.bytes, snapshot).map_err(PipelineError::Model)?;
        let mut name = snapshot.file_name().unwrap_or_default().to_os_string();
        name.push(".buildinfo");
        let info_path = snapshot.with_file_name(name);
        std::fs::write(&info_path, self.manifest.render())?;
        Ok(info_path)
    }

    /// Publishes the snapshot (+ `BUILDINFO` sidecar) into a registry:
    /// admission (load → validate → warm-up) and the `CURRENT` flip
    /// happen inside [`ModelRegistry::publish_with_files`]. Updates the
    /// report's `published_version`.
    pub fn publish(&mut self, registry: &ModelRegistry, note: &str) -> PipelineResult<SnapshotMeta> {
        let manifest_text = self.manifest.render();
        let meta = registry.publish_with_files(
            &self.bytes,
            note,
            &[(BUILDINFO_FILE, manifest_text.as_bytes())],
        )?;
        self.report.published_version = Some(meta.version);
        Ok(meta)
    }
}

/// What one shard worker hands back per leaf.
struct LeafYield {
    leaf: LeafId,
    fingerprint: u64,
    assembly: LeafAssembly,
    /// The leaf's curated records in canonical order — the meta-fallback
    /// assembly input. Left empty when no fallback will be built.
    records: Vec<KeyphraseRecord>,
    reused: bool,
}

struct ShardYield {
    leaves: Vec<LeafYield>,
    curation: CurationStats,
}

/// Runs a build plan over `sources`.
pub fn build(plan: &BuildPlan, sources: Vec<Box<dyn RecordSource>>) -> PipelineResult<BuildOutput> {
    let start = Instant::now();
    let jobs = if plan.jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        plan.jobs
    };

    // A delta base is only usable if it was built with this exact config.
    let config_fp = config_fingerprint(&plan.config);
    let mut delta_discarded = None;
    let delta = match &plan.delta {
        Some(base) if base.manifest.config_fingerprint != config_fp => {
            delta_discarded = Some(format!(
                "config fingerprint mismatch (base {:016x}, build {config_fp:016x}): full rebuild",
                base.manifest.config_fingerprint
            ));
            None
        }
        other => other.as_ref(),
    };

    let queues: Vec<Arc<Bounded<Vec<KeyphraseRecord>>>> =
        (0..jobs).map(|_| Arc::new(Bounded::new(plan.queue_depth.max(1)))).collect();
    let (yield_tx, yield_rx) = crossbeam::channel::unbounded::<ShardYield>();

    let (source_stats, ingest_result) = crossbeam::thread::scope(|scope| {
        for queue in &queues {
            let queue = Arc::clone(queue);
            let config = &plan.config;
            let tx = yield_tx.clone();
            scope.spawn(move |_| {
                let shard_yield = run_shard(&queue, config, delta);
                // The receiver only disappears if the build is aborting.
                let _ = tx.send(shard_yield);
            });
        }
        drop(yield_tx);

        // Ingest on this thread; close every queue on *all* exits so the
        // workers always drain and join.
        let mut stats: Vec<SourceStats> = Vec::with_capacity(sources.len());
        let result = ingest(plan, sources, &queues, jobs, &mut stats);
        for queue in &queues {
            queue.close();
        }
        (stats, result)
    })
    .expect("shard worker panicked");
    ingest_result?;

    let mut shard_yields: Vec<ShardYield> = yield_rx.into_iter().collect();

    // Deterministic merge: all leaves, ascending.
    let mut leaves: Vec<LeafYield> =
        shard_yields.iter_mut().flat_map(|s| s.leaves.drain(..)).collect();
    leaves.sort_unstable_by_key(|y| y.leaf);
    let mut curation = CurationStats::default();
    for shard in &shard_yields {
        curation.absorb(&shard.curation);
    }
    // A yield exists only for a leaf with ≥1 curated record, so no
    // yields ⇔ nothing survived curation.
    if leaves.is_empty() {
        return Err(PipelineError::Model(GraphExError::EmptyModel));
    }

    let fallback_fp = combine_fingerprints(leaves.iter().map(|y| y.fingerprint));
    let reuse_fallback = plan.config.build_meta_fallback
        && delta.is_some_and(|base| {
            base.manifest.fallback_fingerprint == Some(fallback_fp) && base.model.has_fallback()
        });

    // The fallback assembly spans the whole corpus — roughly as much work
    // as every leaf combined — so overlap it with the merge. Records are
    // *moved* out of the yields (they exist only to feed this), so the
    // build holds at most one copy of the curated corpus beyond the
    // assemblies — and none at all when the fallback is off or reused.
    let corpus: Vec<KeyphraseRecord> = if plan.config.build_meta_fallback && !reuse_fallback {
        leaves.iter_mut().flat_map(|y| std::mem::take(&mut y.records)).collect()
    } else {
        for y in &mut leaves {
            y.records = Vec::new();
        }
        Vec::new()
    };
    let stemming = plan.config.stemming;
    let (model, fallback_reused) = crossbeam::thread::scope(|scope| {
        let fallback_handle = plan.config.build_meta_fallback.then(|| {
            scope.spawn(|_| {
                if reuse_fallback {
                    let base = delta.expect("reuse implies a delta base");
                    LeafAssembly::from_model_fallback(&base.model)
                        .expect("base has_fallback checked")
                } else {
                    let mut ctx = AssemblyContext::new(stemming);
                    LeafAssembly::build(&corpus, &mut ctx)
                }
            })
        });

        let mut assembler = ModelAssembler::new(&plan.config);
        for y in &leaves {
            assembler.add_leaf(y.leaf, &y.assembly);
        }
        if let Some(handle) = fallback_handle {
            let fallback = handle.join().expect("fallback assembly panicked");
            assembler.set_fallback(&fallback);
        }
        (assembler.finish(), reuse_fallback)
    })
    .expect("merge scope panicked");

    let bytes = serialize::to_bytes(&model);
    let snapshot_checksum = serialize::checksum(&bytes);

    let records_in: u64 = source_stats.iter().map(|s| s.records + s.parse_errors).sum();
    let parse_errors: u64 = source_stats.iter().map(|s| s.parse_errors).sum();
    let manifest = BuildManifest {
        config_fingerprint: config_fp,
        snapshot_checksum,
        fallback_fingerprint: plan.config.build_meta_fallback.then_some(fallback_fp),
        records_in,
        parse_errors,
        curation,
        shard: None,
        leaves: leaves.iter().map(|y| (y.leaf.0, y.fingerprint)).collect(),
    };
    let report = BuildReport {
        records_in,
        parse_errors,
        sources: source_stats,
        curation,
        leaves_total: leaves.len(),
        leaves_built: leaves.iter().filter(|y| !y.reused).count(),
        leaves_reused: leaves.iter().filter(|y| y.reused).count(),
        fallback_reused,
        delta_base: delta.map(DeltaBase::checksum),
        delta_discarded,
        jobs,
        keyphrases: model.num_keyphrases(),
        tokens: model.stats().num_tokens,
        snapshot_bytes: bytes.len(),
        snapshot_checksum,
        published_version: None,
        wall_ms: start.elapsed().as_millis() as u64,
    };
    Ok(BuildOutput { bytes, model, manifest, report })
}

/// Reads every source to exhaustion, routing records to their shard
/// queue (`leaf.0 % jobs`) in batches.
fn ingest(
    plan: &BuildPlan,
    sources: Vec<Box<dyn RecordSource>>,
    queues: &[Arc<Bounded<Vec<KeyphraseRecord>>>],
    jobs: usize,
    stats_out: &mut Vec<SourceStats>,
) -> PipelineResult<()> {
    let mut staging: Vec<Vec<KeyphraseRecord>> = (0..jobs).map(|_| Vec::new()).collect();
    let mut batch: Vec<KeyphraseRecord> = Vec::with_capacity(plan.batch);
    for mut source in sources {
        loop {
            source.next_batch(plan.batch, &mut batch).map_err(PipelineError::Source)?;
            if batch.is_empty() {
                break;
            }
            for rec in batch.drain(..) {
                let shard = rec.leaf.0 as usize % jobs;
                staging[shard].push(rec);
                if staging[shard].len() >= plan.batch {
                    push_batch(&queues[shard], &mut staging[shard], plan.batch);
                }
            }
        }
        let stats = source.stats().clone();
        if plan.strict && stats.parse_errors > 0 {
            return Err(PipelineError::Strict(format!(
                "{}: {} unparsable record(s), first: {}",
                stats.name,
                stats.parse_errors,
                stats.error_sample.first().map(String::as_str).unwrap_or("<unavailable>"),
            )));
        }
        stats_out.push(stats);
    }
    for (shard, pending) in staging.iter_mut().enumerate() {
        if !pending.is_empty() {
            push_batch(&queues[shard], pending, 0);
        }
    }
    Ok(())
}

fn push_batch(queue: &Bounded<Vec<KeyphraseRecord>>, staged: &mut Vec<KeyphraseRecord>, cap: usize) {
    let batch = std::mem::replace(staged, Vec::with_capacity(cap));
    // A closed queue here means a worker vanished — only possible if it
    // panicked, which the surrounding scope turns into a build panic.
    let _ = queue.push(batch);
}

/// One shard worker: curate the shard's records, then assemble (or
/// borrow) each owned leaf.
fn run_shard(
    queue: &Bounded<Vec<KeyphraseRecord>>,
    config: &GraphExConfig,
    delta: Option<&DeltaBase>,
) -> ShardYield {
    let mut curator = Curator::new(config.curation.clone());
    while let Some(batch) = queue.pop() {
        for rec in batch {
            curator.push(rec);
        }
    }
    let (mut curated, curation) = curator.finish();
    canonicalize(&mut curated);

    let mut ctx = AssemblyContext::new(config.stemming);
    let mut leaves = Vec::new();
    for (leaf, run) in leaf_runs(&curated) {
        let fingerprint = leaf_fingerprint(run);
        let borrowed = delta
            .filter(|base| base.manifest.leaves.get(&leaf.0) == Some(&fingerprint))
            .and_then(|base| LeafAssembly::from_model(&base.model, leaf));
        let (assembly, reused) = match borrowed {
            Some(assembly) => (assembly, true),
            None => (LeafAssembly::build(run, &mut ctx), false),
        };
        // The record copy exists solely to feed the meta-fallback
        // assembly (which needs the whole corpus in leaf order).
        let records = if config.build_meta_fallback { run.to_vec() } else { Vec::new() };
        leaves.push(LeafYield { leaf, fingerprint, assembly, records, reused });
    }
    ShardYield { leaves, curation }
}

//! # graphex-pipeline — the data→model build subsystem
//!
//! GraphEx's operational selling point (paper Sec. III-D, IV-G) is that
//! construction is deterministic and training-free, so the whole model
//! can be rebuilt daily at marketplace scale. This crate turns the
//! seed-era single-threaded [`graphex_core::GraphExBuilder`] into a
//! production build pipeline:
//!
//! * **Streaming ingestion** ([`source`]): [`RecordSource`]s feed
//!   records from TSV/NDJSON files or a seeded
//!   [`graphex_marketsim::ChurnCorpus`] in bounded batches with
//!   per-source parse-error accounting — no full-corpus buffering.
//! * **Parallel sharded construction** ([`build`]): records are routed
//!   by leaf category to a worker pool over bounded (backpressuring)
//!   queues; each worker curates and assembles its leaves concurrently,
//!   and a deterministic single-threaded merge produces a model that is
//!   **byte-identical** to the sequential builder's output, for any
//!   worker count and any record arrival order.
//! * **Incremental delta builds**: every build writes a `BUILDINFO`
//!   manifest ([`BuildManifest`]) of per-leaf content fingerprints next
//!   to the snapshot; the next build borrows unchanged leaves straight
//!   out of the previous snapshot and reconstructs only the churned
//!   ones — with `delta build ≡ full rebuild` guaranteed byte-for-byte.
//! * **Registry integration**: [`BuildOutput::publish`] pushes the
//!   snapshot (+ manifest sidecar) through the
//!   [`graphex_serving::ModelRegistry`] admission pipeline — validate,
//!   warm up, atomic `CURRENT` flip — closing the loop
//!   ingest → build → publish → hot-swap → serve.
//!
//! ```
//! use graphex_core::{GraphExConfig, KeyphraseRecord, LeafId};
//! use graphex_pipeline::{build, BuildPlan, VecSource};
//!
//! let mut config = GraphExConfig::default();
//! config.curation.min_search_count = 0;
//! let records = vec![
//!     KeyphraseRecord::new("audeze maxwell", LeafId(7), 900, 120),
//!     KeyphraseRecord::new("usb c charger", LeafId(9), 500, 50),
//! ];
//! let plan = BuildPlan::new(config).jobs(2);
//! let output = build(&plan, vec![Box::new(VecSource::new("demo", records))]).unwrap();
//! assert_eq!(output.report.leaves_total, 2);
//! // The manifest fingerprints every leaf for the next delta build.
//! assert_eq!(output.manifest.leaves.len(), 2);
//! ```

mod build;
pub mod manifest;
mod queue;
pub mod shard;
pub mod source;

pub use build::{
    build, BuildOutput, BuildPlan, BuildReport, DeltaBase, PipelineError, PipelineResult,
};
pub use manifest::{buildinfo_path_for, BuildManifest, BUILDINFO_FILE};
pub use shard::{emit_shards, publish_shards, shard_of, shard_root, ShardSnapshot};
pub use source::{
    open_file_source, open_overlay_journal_source, overlay_journal_source, MarketsimSource,
    NdjsonFileSource, RecordSource, SourceStats, TsvFileSource, VecSource,
};

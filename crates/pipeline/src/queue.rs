//! Bounded SPSC/MPSC batch queue between the ingest thread and shard
//! workers.
//!
//! Same `Mutex` + `Condvar` shape as the network frontend's accept queue
//! (`graphex-server`), with one deliberate difference: the push side
//! **blocks** instead of shedding. Ingestion is a batch job — when a
//! shard worker falls behind, the right behaviour is backpressure on the
//! reader (bounding memory to `capacity × batch` records per shard), not
//! dropping records.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded blocking queue.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            state: Mutex::new(State { items: VecDeque::with_capacity(capacity), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocking push: waits while the queue is full. `Err` returns the
    /// item only if the queue was closed (consumer gone).
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocking pop. Returns `None` only once the queue is closed *and*
    /// drained, so closing never discards admitted work.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pushes start failing, poppers drain then get
    /// `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_blocks_until_popped() {
        let q = Arc::new(Bounded::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2).is_ok());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        assert!(producer.join().unwrap(), "blocked push completed after pop");
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_drains_then_stops_and_rejects_pushes() {
        let q = Bounded::new(4);
        q.push("a").unwrap();
        q.close();
        assert_eq!(q.push("b"), Err("b"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_producer() {
        let q = Arc::new(Bounded::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(2), "close unblocks the producer with its item");
    }
}

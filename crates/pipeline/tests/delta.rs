//! Incremental (delta) builds: drive `marketsim` churn over several
//! generations and pin `delta build ≡ full rebuild` — same bytes, same
//! inference answers — while asserting real leaf reuse happened.

use graphex_core::{Engine, GraphExConfig, InferRequest};
use graphex_marketsim::{CategorySpec, ChurnCorpus};
use graphex_pipeline::{
    build, BuildOutput, BuildPlan, DeltaBase, MarketsimSource, PipelineError,
};

fn config() -> GraphExConfig {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    config
}

fn tempdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("graphex-pipeline-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn full_build(corpus: &ChurnCorpus, jobs: usize) -> BuildOutput {
    let plan = BuildPlan::new(config()).jobs(jobs);
    build(&plan, vec![Box::new(MarketsimSource::new(corpus))]).unwrap()
}

fn infer_answers(engine: &Engine, corpus: &ChurnCorpus) -> Vec<(String, Vec<u32>)> {
    corpus
        .marketplace()
        .items
        .iter()
        .take(40)
        .map(|item| {
            let resp = engine.infer(&InferRequest::new(&item.title, item.leaf).k(10));
            (item.title.clone(), resp.predictions.iter().map(|p| p.keyphrase).collect())
        })
        .collect()
}

/// A small many-leaf spec: churn must touch *some* leaves while leaving
/// most untouched, so delta reuse is observable (the 3-leaf tiny preset
/// gets fully dirtied by any churn step).
fn many_leaves(seed: u64) -> CategorySpec {
    CategorySpec {
        name: "DELTA".into(),
        seed,
        num_leaves: 24,
        products_per_leaf: 8,
        num_items: 500,
        num_sessions: 3_000,
        leaf_id_base: 5_000,
    }
}

#[test]
fn delta_build_equals_full_rebuild_across_generations() {
    let dir = tempdir("generations");
    // ~1% churn over 24 leaves: every generation changes *some* leaves
    // while reliably sparing most, so reuse is observable.
    let mut corpus = ChurnCorpus::new(many_leaves(0xD1), 0.01);

    // Generation 0: full build, persisted with its BUILDINFO.
    let gen0 = full_build(&corpus, 2);
    let snapshot = dir.join("model.gexm");
    gen0.write_to(&snapshot).unwrap();

    let mut reused_any = false;
    for generation in 1..=3u32 {
        let report = corpus.advance();
        assert!(report.removed + report.added > 0, "gen {generation}: churn was a no-op");

        let full = full_build(&corpus, 2);
        let delta_plan = BuildPlan::new(config())
            .jobs(4)
            .delta(DeltaBase::load(&snapshot).unwrap());
        let delta = build(&delta_plan, vec![Box::new(MarketsimSource::new(&corpus))]).unwrap();

        // The tentpole invariant: same bytes …
        assert_eq!(
            delta.bytes.as_ref(),
            full.bytes.as_ref(),
            "gen {generation}: delta build diverges from full rebuild"
        );
        assert_eq!(delta.manifest, full.manifest, "gen {generation}: manifests diverge");
        // … and same answers.
        let full_engine = Engine::from_model(full.model);
        let delta_engine = Engine::from_model(delta.model.clone());
        assert_eq!(
            infer_answers(&full_engine, &corpus),
            infer_answers(&delta_engine, &corpus),
            "gen {generation}: inference answers diverge"
        );

        // Low-rate churn over many leaves leaves most untouched: any
        // reconstruction must be accounted as built-or-reused, exactly.
        assert_eq!(
            delta.report.leaves_built + delta.report.leaves_reused,
            delta.report.leaves_total
        );
        if delta.report.leaves_reused > 0 {
            reused_any = true;
        }
        assert_eq!(delta.report.delta_base, Some(gen_checksum(&snapshot)));
        assert!(delta.report.delta_discarded.is_none());

        // Next generation deltas against this one.
        delta.write_to(&snapshot).unwrap();
    }
    assert!(reused_any, "no generation reused a single leaf — delta path never engaged");
    std::fs::remove_dir_all(&dir).ok();
}

fn gen_checksum(snapshot: &std::path::Path) -> u64 {
    graphex_core::serialize::checksum(&std::fs::read(snapshot).unwrap())
}

#[test]
fn unchanged_corpus_reuses_every_leaf_and_the_fallback() {
    let dir = tempdir("unchanged");
    let corpus = ChurnCorpus::new(CategorySpec::tiny(0xD2), 0.0);
    let first = full_build(&corpus, 2);
    let snapshot = dir.join("model.gexm");
    first.write_to(&snapshot).unwrap();

    let plan = BuildPlan::new(config()).jobs(2).delta(DeltaBase::load(&snapshot).unwrap());
    let again = build(&plan, vec![Box::new(MarketsimSource::new(&corpus))]).unwrap();
    assert_eq!(again.bytes.as_ref(), first.bytes.as_ref());
    assert_eq!(again.report.leaves_reused, again.report.leaves_total);
    assert_eq!(again.report.leaves_built, 0);
    assert!(again.report.fallback_reused, "identical corpus must reuse the fallback graph");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn config_change_discards_the_delta_base() {
    let dir = tempdir("config-change");
    let corpus = ChurnCorpus::new(CategorySpec::tiny(0xD3), 0.0);
    let first = full_build(&corpus, 2);
    let snapshot = dir.join("model.gexm");
    first.write_to(&snapshot).unwrap();

    let mut changed = config();
    changed.curation.min_search_count += 1;
    let plan = BuildPlan::new(changed).jobs(2).delta(DeltaBase::load(&snapshot).unwrap());
    let rebuilt = build(&plan, vec![Box::new(MarketsimSource::new(&corpus))]).unwrap();
    assert_eq!(rebuilt.report.leaves_reused, 0, "config changed: nothing may be borrowed");
    assert!(rebuilt.report.delta_discarded.is_some());
    assert!(!rebuilt.report.fallback_reused);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_buildinfo_is_rejected() {
    let dir = tempdir("stale");
    let corpus = ChurnCorpus::new(CategorySpec::tiny(0xD4), 0.0);
    let output = full_build(&corpus, 1);
    let snapshot = dir.join("model.gexm");
    let buildinfo = output.write_to(&snapshot).unwrap();

    // Tamper with the snapshot so the manifest no longer describes it.
    let mut bytes = std::fs::read(&snapshot).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&snapshot, &bytes).unwrap();
    let err = DeltaBase::load(&snapshot);
    assert!(matches!(err, Err(PipelineError::Delta(_))), "stale BUILDINFO accepted: {err:?}");
    assert!(buildinfo.is_file());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_buildinfo_is_a_delta_error() {
    let dir = tempdir("missing-info");
    let corpus = ChurnCorpus::new(CategorySpec::tiny(0xD5), 0.0);
    let output = full_build(&corpus, 1);
    let snapshot = dir.join("model.gexm");
    graphex_core::serialize::write_bytes_to(&output.bytes, &snapshot).unwrap();
    let err = DeltaBase::load(&snapshot);
    assert!(matches!(err, Err(PipelineError::Delta(_))));
    std::fs::remove_dir_all(&dir).ok();
}

//! Per-shard snapshot emission properties, over seeded marketsim
//! corpora:
//!
//! * `shard(leaf, N)` partitioning covers every leaf **exactly once**
//!   for N ∈ {1, 2, 3, 8} — no leaf lost, none duplicated;
//! * the union of per-shard `BUILDINFO` leaf-fingerprint tables equals
//!   the monolithic manifest's table;
//! * emitting **one** shard reproduces the monolithic snapshot byte for
//!   byte (shard emission is exact, not approximate);
//! * every shard answers its own leaves identically to the monolith,
//!   including `MetaFallback` answers (the global fallback rides along);
//! * a shard snapshot survives a registry publish → load round trip,
//!   `BUILDINFO` and all;
//! * an empty shard (more shards than residue classes) is a build-time
//!   error, not an unservable snapshot.

use graphex_core::{serialize, Engine, GraphExConfig, InferRequest, LeafId};
use graphex_marketsim::{CategorySpec, ChurnCorpus};
use graphex_pipeline::{
    build, shard_of, BuildManifest, BuildOutput, BuildPlan, MarketsimSource, PipelineError,
};
use graphex_serving::ModelRegistry;
use std::collections::BTreeMap;

fn spec(seed: u64) -> CategorySpec {
    CategorySpec {
        name: "SHARD".into(),
        seed,
        num_leaves: 24,
        products_per_leaf: 8,
        num_items: 500,
        num_sessions: 3_000,
        leaf_id_base: 4_000,
    }
}

fn monolith(seed: u64) -> (ChurnCorpus, BuildOutput) {
    let corpus = ChurnCorpus::new(spec(seed), 0.01);
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    let plan = BuildPlan::new(config).jobs(2);
    let output = build(&plan, vec![Box::new(MarketsimSource::new(&corpus))]).unwrap();
    (corpus, output)
}

fn tempdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("graphex-shard-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn partition_covers_every_leaf_exactly_once() {
    for seed in [0x5A1, 0x5A2] {
        let (_, output) = monolith(seed);
        let all: Vec<LeafId> = output.model.leaf_ids().collect();
        assert!(all.len() > 8, "spec produced {} leaves — too few to shard", all.len());
        for shards in [1u32, 2, 3, 8] {
            let snapshots = output.emit_shards(shards).unwrap();
            assert_eq!(snapshots.len(), shards as usize);

            let mut seen: BTreeMap<u32, u32> = BTreeMap::new();
            for snapshot in &snapshots {
                assert_eq!(snapshot.shards, shards);
                assert_eq!(snapshot.manifest.shard, Some((snapshot.index, shards)));
                for leaf in snapshot.model.leaf_ids() {
                    assert_eq!(
                        shard_of(leaf, shards),
                        snapshot.index,
                        "leaf {leaf:?} landed on the wrong shard"
                    );
                    *seen.entry(leaf.0).or_default() += 1;
                }
            }
            for leaf in &all {
                assert_eq!(
                    seen.get(&leaf.0),
                    Some(&1),
                    "seed {seed:#x} N={shards}: leaf {leaf:?} not covered exactly once"
                );
            }
            assert_eq!(seen.len(), all.len(), "no extra leaves invented");
        }
    }
}

#[test]
fn manifest_union_equals_monolith() {
    let (_, output) = monolith(0x5A3);
    for shards in [2u32, 3, 8] {
        let snapshots = output.emit_shards(shards).unwrap();
        let mut union: BTreeMap<u32, u64> = BTreeMap::new();
        for snapshot in &snapshots {
            // Per-shard manifests keep the whole-build provenance so a
            // shard can stand in as a delta base / audit subject.
            assert_eq!(snapshot.manifest.config_fingerprint, output.manifest.config_fingerprint);
            assert_eq!(
                snapshot.manifest.fallback_fingerprint,
                output.manifest.fallback_fingerprint
            );
            assert_eq!(snapshot.manifest.records_in, output.manifest.records_in);
            assert_eq!(
                snapshot.manifest.snapshot_checksum,
                serialize::checksum(&snapshot.bytes),
                "per-shard checksum describes the shard's own bytes"
            );
            for (leaf, fp) in &snapshot.manifest.leaves {
                assert!(
                    union.insert(*leaf, *fp).is_none(),
                    "leaf {leaf} fingerprinted by two shards"
                );
            }
        }
        assert_eq!(union, output.manifest.leaves, "N={shards}: fingerprint union != monolith");
    }
}

#[test]
fn single_shard_is_byte_identical_to_monolith() {
    let (_, output) = monolith(0x5A4);
    let snapshots = output.emit_shards(1).unwrap();
    assert_eq!(snapshots[0].bytes, output.bytes, "N=1 emission must be exact");
    assert_eq!(snapshots[0].manifest.leaves, output.manifest.leaves);
    assert_eq!(snapshots[0].manifest.shard, Some((0, 1)));
    // Same bytes → same checksum as the monolith records.
    assert_eq!(snapshots[0].manifest.snapshot_checksum, output.manifest.snapshot_checksum);
}

#[test]
fn shards_answer_their_leaves_like_the_monolith() {
    let (corpus, output) = monolith(0x5A5);
    let engine = Engine::new(std::sync::Arc::new(output.model.clone()));
    let shards = 3u32;
    let snapshots = output.emit_shards(shards).unwrap();
    let shard_engines: Vec<Engine> =
        snapshots.iter().map(|s| Engine::new(std::sync::Arc::new(s.model.clone()))).collect();

    // Keyphrase ids are vocab-local (each shard re-interns its own
    // vocabulary), so equality is over the resolved *texts*.
    let texts = |engine: &Engine, response: &graphex_core::InferResponse| -> Vec<String> {
        response
            .predictions
            .iter()
            .map(|p| engine.model().keyphrase_text(p.keyphrase).unwrap().to_string())
            .collect()
    };

    let mut checked = 0usize;
    for item in corpus.marketplace().items.iter().take(120) {
        let request = InferRequest::new(&item.title, item.leaf).k(10);
        let want = engine.infer(&request);
        let shard = shard_of(item.leaf, shards) as usize;
        let got = shard_engines[shard].infer(&request);
        assert_eq!(got.outcome, want.outcome, "{}", item.title);
        assert_eq!(
            texts(&shard_engines[shard], &got),
            texts(&engine, &want),
            "title {:?} (leaf {:?}) differs on shard {shard}",
            item.title,
            item.leaf
        );
        checked += 1;
    }
    assert!(checked >= 100);

    // Unknown leaf → the global fallback, identically on every shard.
    let request = InferRequest::new("wireless noise cancelling headphones", LeafId(1)).k(10);
    let want = engine.infer(&request);
    for (i, shard_engine) in shard_engines.iter().enumerate() {
        let got = shard_engine.infer(&request);
        assert_eq!(got.outcome, want.outcome, "shard {i} fallback outcome");
        assert_eq!(
            texts(shard_engine, &got),
            texts(&engine, &want),
            "shard {i} fallback answers differ from monolith"
        );
    }
}

#[test]
fn shard_publish_roundtrips_through_registry() {
    let (_, output) = monolith(0x5A6);
    let root = tempdir("publish");
    let snapshots = output.emit_shards(2).unwrap();
    let metas =
        graphex_pipeline::publish_shards(&snapshots, &root, "shard smoke").unwrap();
    assert_eq!(metas.len(), 2);
    for snapshot in &snapshots {
        let shard_dir = graphex_pipeline::shard_root(&root, snapshot.index);
        let registry = ModelRegistry::open(&shard_dir).unwrap();
        let current = registry.current_version().unwrap();
        let loaded = BuildManifest::load(
            registry.root().join(current.to_string()).join(graphex_pipeline::BUILDINFO_FILE),
        )
        .unwrap();
        assert_eq!(&loaded, &snapshot.manifest, "BUILDINFO survived the publish");
        assert_eq!(loaded.shard, Some((snapshot.index, 2)));
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn empty_shard_is_an_error_not_a_snapshot() {
    let (_, output) = monolith(0x5A7);
    // All leaf ids share the base offset; a shard count exceeding the
    // number of leaves guarantees at least one empty residue class.
    let leaves = output.model.leaf_ids().count() as u32;
    match output.emit_shards(leaves + 7) {
        Err(PipelineError::Shard(message)) => {
            assert!(message.contains("owns no leaves"), "unhelpful error: {message}");
        }
        other => panic!("expected Shard error, got {other:?}"),
    }
    assert!(matches!(output.emit_shards(0), Err(PipelineError::Shard(_))));
}

//! The pipeline's headline invariant: parallel sharded construction is
//! **byte-identical** to the sequential [`GraphExBuilder`] — for any
//! worker count and any record arrival order — on seeded marketsim
//! corpora.
//!
//! This is the property the whole delta-build design rests on: if
//! scheduling or sharding could leak into the bytes, fingerprint-based
//! leaf reuse could never be exact.

use graphex_core::{serialize, GraphExBuilder, GraphExConfig, KeyphraseRecord};
use graphex_marketsim::{CategorySpec, ChurnCorpus};
use graphex_pipeline::{build, BuildPlan, VecSource};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn config() -> GraphExConfig {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    config
}

fn corpus_records(seed: u64) -> Vec<KeyphraseRecord> {
    // Duplicate a slice of the records so the curation merge path is
    // exercised (not just distinct rows).
    let corpus = ChurnCorpus::new(CategorySpec::tiny(seed), 0.0);
    let mut records = corpus.records();
    let dupes: Vec<KeyphraseRecord> = records.iter().take(25).cloned().collect();
    records.extend(dupes);
    records
}

fn pipeline_bytes(records: Vec<KeyphraseRecord>, jobs: usize) -> (Vec<u8>, graphex_pipeline::BuildReport) {
    let plan = BuildPlan::new(config()).jobs(jobs);
    let output = build(&plan, vec![Box::new(VecSource::new("test", records))]).unwrap();
    (output.bytes.to_vec(), output.report)
}

#[test]
fn parallel_build_is_byte_identical_to_sequential_builder() {
    for seed in [11u64, 4242] {
        let records = corpus_records(seed);
        let (reference, ref_stats) = GraphExBuilder::new(config())
            .add_records(records.clone())
            .build_with_stats()
            .unwrap();
        let reference_bytes = serialize::to_bytes(&reference);

        let mut rng = SmallRng::seed_from_u64(seed ^ 0xF00D);
        for jobs in [1usize, 2, 8] {
            // Shuffle differently per worker count: neither arrival order
            // nor scheduling may reach the bytes.
            let mut shuffled = records.clone();
            shuffled.shuffle(&mut rng);
            let (bytes, report) = pipeline_bytes(shuffled, jobs);
            assert_eq!(
                bytes,
                reference_bytes.as_ref(),
                "jobs={jobs} seed={seed}: pipeline bytes diverge from sequential builder"
            );
            assert_eq!(report.curation, ref_stats, "jobs={jobs}: curation stats diverge");
            assert_eq!(report.jobs, jobs);
            assert_eq!(report.leaves_built, report.leaves_total);
            assert_eq!(report.leaves_reused, 0);
            assert_eq!(report.snapshot_checksum, serialize::checksum(&bytes));
        }
    }
}

#[test]
fn multi_source_ingest_equals_single_source() {
    let records = corpus_records(99);
    let (all, _) = pipeline_bytes(records.clone(), 3);

    let mid = records.len() / 2;
    let (a, b) = records.split_at(mid);
    let plan = BuildPlan::new(config()).jobs(3);
    let output = build(
        &plan,
        vec![
            Box::new(VecSource::new("first-half", a.to_vec())),
            Box::new(VecSource::new("second-half", b.to_vec())),
        ],
    )
    .unwrap();
    assert_eq!(output.bytes.as_ref(), all, "source splitting leaked into the bytes");
    assert_eq!(output.report.sources.len(), 2);
    assert_eq!(
        output.report.records_in,
        records.len() as u64,
        "per-source accounting lost records"
    );
}

#[test]
fn built_snapshot_round_trips_and_serves() {
    let records = corpus_records(7);
    let (bytes, report) = pipeline_bytes(records, 4);
    let model = serialize::from_bytes(&bytes).unwrap();
    assert_eq!(model.leaf_ids().count(), report.leaves_total);
    assert_eq!(model.num_keyphrases(), report.keyphrases);
    assert!(model.has_fallback());
}

#[test]
fn empty_corpus_fails_like_the_builder() {
    let plan = BuildPlan::new(GraphExConfig::default()).jobs(2);
    let err = build(&plan, vec![Box::new(VecSource::new("empty", Vec::new()))]);
    assert!(
        matches!(err, Err(graphex_pipeline::PipelineError::Model(_))),
        "empty corpus must fail admission, got {err:?}"
    );
}

//! Property tests for the request/response inference API: the batched
//! engine path must be indistinguishable from sequential per-request
//! inference, for any mix of per-request parameters.

use graphex_core::{
    Alignment, Engine, GraphExBuilder, GraphExConfig, InferRequest, LeafId, Outcome,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared engine: building the model is ~10^3 slower than inferring,
/// so every proptest case reuses it (the model is immutable + Sync).
fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        config.build_meta_fallback = true;
        let model = GraphExBuilder::new(config)
            .add_records((0..60).map(|i| {
                graphex_core::KeyphraseRecord::new(
                    format!("brand{} widget model{} pro", i % 12, i % 7),
                    LeafId(i % 4),
                    100 + i,
                    10 + (i * 3) % 40,
                )
            }))
            .build()
            .expect("model builds");
        Engine::from_model(model)
    })
}

/// Strategy for one request's worth of inputs: a title assembled from the
/// model's token universe (plus noise words), a leaf that may or may not
/// exist, and per-request parameter overrides.
fn request_inputs() -> impl Strategy<Value = (String, u32, usize, u8, bool, bool)> {
    let vocab: Vec<String> = (0..12)
        .map(|i| format!("brand{i}"))
        .chain((0..7).map(|i| format!("model{i}")))
        .chain(["widget".to_string(), "pro".to_string(), "unrelated".to_string()])
        .collect();
    (
        prop::collection::vec(prop::sample::select(vocab), 0..6)
            .prop_map(|words| words.join(" ")),
        0u32..6,  // leaves 4,5 are unknown → fallback
        1usize..25,
        0u8..4,   // 0 = model default, 1..3 = explicit alignment
        any::<bool>(),
        any::<bool>(),
    )
}

fn build_request(inputs: &(String, u32, usize, u8, bool, bool), idx: usize) -> InferRequest<'_> {
    let (title, leaf, k, alignment, keep_group, resolve) = inputs;
    let mut req = InferRequest::new(title, LeafId(*leaf))
        .k(*k)
        .keep_threshold_group(*keep_group)
        .resolve_texts(*resolve)
        .id(idx as u64);
    if *alignment > 0 {
        req = req.alignment(Alignment::ALL[(*alignment - 1) as usize]);
    }
    req
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Engine::infer_batch` ≡ sequential `Engine::infer`, request by
    /// request, under mixed per-request k / alignment / threshold-group /
    /// resolve-texts settings and any thread count.
    #[test]
    fn batch_equals_sequential(
        inputs in proptest::collection::vec(request_inputs(), 0..24),
        threads in 0usize..9,
    ) {
        let engine = engine();
        let requests: Vec<InferRequest<'_>> =
            inputs.iter().enumerate().map(|(i, inp)| build_request(inp, i)).collect();
        let batched = engine.infer_batch(&requests, threads);
        let sequential: Vec<_> = requests.iter().map(|r| engine.infer(r)).collect();
        prop_assert_eq!(batched, sequential);
    }

    /// Outcome provenance invariants hold for arbitrary requests: servable
    /// outcomes carry predictions, non-servable ones are empty, resolved
    /// texts stay parallel to predictions, and ids echo.
    #[test]
    fn response_invariants(inputs in request_inputs()) {
        let engine = engine();
        let request = build_request(&inputs, 7);
        let response = engine.infer(&request);
        prop_assert_eq!(response.id, Some(7));
        match response.outcome {
            Outcome::ExactLeaf | Outcome::MetaFallback => {
                prop_assert!(!response.predictions.is_empty());
                if !request.keep_threshold_group {
                    prop_assert!(response.predictions.len() <= request.k);
                }
            }
            Outcome::UnknownLeaf | Outcome::Empty => {
                prop_assert!(response.predictions.is_empty());
            }
        }
        if request.resolve_texts {
            prop_assert_eq!(response.texts.len(), response.predictions.len());
        } else {
            prop_assert!(response.texts.is_empty());
        }
        // Fallback provenance: outcome matches whether the leaf has a graph.
        let exact_leaf_exists = engine.model().leaf_graph(request.leaf).is_some();
        match response.outcome {
            Outcome::ExactLeaf => prop_assert!(exact_leaf_exists),
            Outcome::MetaFallback | Outcome::UnknownLeaf => prop_assert!(!exact_leaf_exists),
            Outcome::Empty => {}
        }
    }
}

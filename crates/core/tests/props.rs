//! Property-based tests for the GraphEx core.
//!
//! These pin the algorithmic invariants the paper's complexity and
//! correctness arguments rest on, against randomly generated keyphrase
//! universes.

use graphex_core::{
    Alignment, GraphExBuilder, GraphExConfig, InferenceParams, KeyphraseRecord, LeafId, Scratch,
};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// A small random vocabulary to force word overlap between phrases.
fn word() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "audeze", "maxwell", "gaming", "headphones", "xbox", "wireless", "bluetooth", "case",
        "charger", "usb", "cable", "pro", "max", "mini", "leather", "red",
    ])
    .prop_map(str::to_string)
}

fn phrase() -> impl Strategy<Value = String> {
    prop::collection::vec(word(), 1..5).prop_map(|ws| ws.join(" "))
}

fn records() -> impl Strategy<Value = Vec<KeyphraseRecord>> {
    prop::collection::vec(
        (phrase(), 0u32..3, 1u32..1000, 1u32..1000)
            .prop_map(|(text, leaf, s, r)| KeyphraseRecord::new(text, LeafId(leaf), s, r)),
        1..40,
    )
}

fn no_curation() -> GraphExConfig {
    let mut c = GraphExConfig::default();
    c.curation.min_search_count = 0;
    c
}

/// Naive reference for the enumeration step: distinct-token set
/// intersection per (normalized, stemmed) keyphrase.
fn naive_counts(records: &[KeyphraseRecord], leaf: LeafId, title: &str) -> BTreeMap<String, usize> {
    let tok = graphex_textkit::TokenizerBuilder::new().stemming(true).build();
    let norm = graphex_textkit::Tokenizer::default();
    let title_tokens: BTreeSet<String> = tok.tokenize(title).collect();
    let mut out = BTreeMap::new();
    for rec in records.iter().filter(|r| r.leaf == leaf) {
        let normalized = norm.tokenize(&rec.text).collect::<Vec<_>>().join(" ");
        if normalized.is_empty() {
            continue;
        }
        let kp_tokens: BTreeSet<String> = tok.tokenize(&rec.text).collect();
        let c = kp_tokens.intersection(&title_tokens).count();
        if c > 0 {
            // duplicates merge to one label; counts identical by construction
            out.insert(normalized, c);
        }
    }
    out
}

proptest! {
    /// Enumeration counts (`c = |T ∩ l|`) match the naive set-intersection
    /// definition for every candidate, on every leaf.
    #[test]
    fn enumeration_matches_naive_dc(recs in records(), title_words in prop::collection::vec(word(), 1..8)) {
        let title = title_words.join(" ");
        let model = GraphExBuilder::new(no_curation()).add_records(recs.clone()).build().unwrap();
        for leaf_num in 0u32..3 {
            let leaf = LeafId(leaf_num);
            if model.leaf_graph(leaf).is_none() { continue; }
            let mut scratch = Scratch::new();
            let params = InferenceParams { k: usize::MAX, alignment: None, keep_threshold_group: true };
            let preds = model.infer(&title, leaf, &params, &mut scratch).unwrap();
            let got: BTreeMap<String, usize> = preds
                .iter()
                .map(|p| (model.keyphrase_text(p.keyphrase).unwrap().to_string(), p.matched as usize))
                .collect();
            let want = naive_counts(&recs, leaf, &title);
            prop_assert_eq!(got, want, "leaf {}", leaf_num);
        }
    }

    /// Pruning + ranking never returns more than k when truncation is on,
    /// and never returns fewer than min(k, #candidates).
    #[test]
    fn k_contract(recs in records(), title_words in prop::collection::vec(word(), 1..8), k in 1usize..10) {
        let title = title_words.join(" ");
        let model = GraphExBuilder::new(no_curation()).add_records(recs).build().unwrap();
        let mut scratch = Scratch::new();
        let all_params = InferenceParams { k: usize::MAX, alignment: None, keep_threshold_group: true };
        for leaf in model.leaf_ids().collect::<Vec<_>>() {
            let total = model.infer(&title, leaf, &all_params, &mut scratch).unwrap().len();
            let preds = model.infer(&title, leaf, &InferenceParams::with_k(k), &mut scratch).unwrap();
            prop_assert!(preds.len() <= k);
            prop_assert_eq!(preds.len(), k.min(total));
        }
    }

    /// With `keep_threshold_group`, the result set is count-downward-closed:
    /// if a label with count c is returned, every candidate with count > c
    /// is returned too (the paper's group semantics).
    #[test]
    fn threshold_group_is_downward_closed(recs in records(), title_words in prop::collection::vec(word(), 1..8), k in 1usize..6) {
        let title = title_words.join(" ");
        let model = GraphExBuilder::new(no_curation()).add_records(recs).build().unwrap();
        let mut scratch = Scratch::new();
        let grouped = InferenceParams { k, alignment: None, keep_threshold_group: true };
        let all = InferenceParams { k: usize::MAX, alignment: None, keep_threshold_group: true };
        for leaf in model.leaf_ids().collect::<Vec<_>>() {
            let returned = model.infer(&title, leaf, &grouped, &mut scratch).unwrap();
            let everything = model.infer(&title, leaf, &all, &mut scratch).unwrap();
            let Some(min_returned) = returned.iter().map(|p| p.matched).min() else { continue };
            let missing_higher = everything.iter().any(|p| {
                p.matched > min_returned && !returned.iter().any(|q| q.keyphrase == p.keyphrase)
            });
            prop_assert!(!missing_higher, "dropped a higher-count group member");
        }
    }

    /// Ranking is sorted: alignment scores are non-increasing, and within
    /// equal scores search counts are non-increasing.
    #[test]
    fn ranking_is_sorted(recs in records(), title_words in prop::collection::vec(word(), 1..8)) {
        let title = title_words.join(" ");
        let model = GraphExBuilder::new(no_curation()).add_records(recs).build().unwrap();
        let mut scratch = Scratch::new();
        for leaf in model.leaf_ids().collect::<Vec<_>>() {
            for alignment in Alignment::ALL {
                let params = InferenceParams { k: 40, alignment: Some(alignment), keep_threshold_group: false };
                let preds = model.infer(&title, leaf, &params, &mut scratch).unwrap();
                for w in preds.windows(2) {
                    let s0 = w[0].score(alignment);
                    let s1 = w[1].score(alignment);
                    prop_assert!(s0 >= s1 - 1e-12, "{alignment}: {s0} < {s1}");
                    if (s0 - s1).abs() < 1e-12 {
                        prop_assert!(w[0].search_count >= w[1].search_count);
                    }
                }
            }
        }
    }

    /// Serialization round-trips: the restored model produces identical
    /// predictions on arbitrary titles.
    #[test]
    fn serialize_roundtrip(recs in records(), title_words in prop::collection::vec(word(), 1..8)) {
        let title = title_words.join(" ");
        let model = GraphExBuilder::new(no_curation()).add_records(recs).build().unwrap();
        let bytes = graphex_core::serialize::to_bytes(&model);
        let restored = graphex_core::serialize::from_bytes(&bytes).unwrap();
        let mut scratch = Scratch::new();
        for leaf in model.leaf_ids().collect::<Vec<_>>() {
            let req = graphex_core::InferRequest::new(&title, leaf).k(20).resolve_texts(true);
            let a = model.infer_request(&req, &mut scratch);
            let b = restored.infer_request(&req, &mut scratch);
            prop_assert_eq!(a.outcome, b.outcome);
            prop_assert_eq!(a.texts, b.texts);
        }
    }

    /// Scratch reuse across many random calls never leaks state: a fresh
    /// scratch gives the same answer as a heavily reused one.
    #[test]
    fn scratch_reuse_equivalence(recs in records(), titles in prop::collection::vec(prop::collection::vec(word(), 1..8), 1..10)) {
        let model = GraphExBuilder::new(no_curation()).add_records(recs).build().unwrap();
        let leaves: Vec<LeafId> = model.leaf_ids().collect();
        let mut reused = Scratch::new();
        let params = InferenceParams::with_k(15);
        for words in &titles {
            let title = words.join(" ");
            for &leaf in &leaves {
                let mut fresh = Scratch::new();
                let a = model.infer(&title, leaf, &params, &mut reused).unwrap();
                let b = model.infer(&title, leaf, &params, &mut fresh).unwrap();
                prop_assert_eq!(a, b);
            }
        }
    }

    /// LTA is strictly monotone in c for fixed |l| and strictly decreasing
    /// in |l| for fixed c (the "risk" penalty).
    #[test]
    fn lta_monotonicity(c in 1u32..20, l in 1u32..20) {
        prop_assume!(c <= l);
        let lta = Alignment::Lta;
        if c < l {
            prop_assert!(lta.score(c + 1, l, 30) > lta.score(c, l, 30));
        }
        prop_assert!(lta.score(c, l + 1, 30) < lta.score(c, l, 30));
    }
}

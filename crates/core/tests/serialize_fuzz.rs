//! Deserialization robustness: arbitrary and mutated byte streams must
//! never panic, loop, or silently succeed — corrupt model files are an
//! operational reality for anything loaded from disk.

use graphex_core::{serialize, GraphExBuilder, GraphExConfig, KeyphraseRecord, LeafId};
use proptest::prelude::*;

fn sample_bytes() -> Vec<u8> {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 0;
    let model = GraphExBuilder::new(config)
        .add_records(vec![
            KeyphraseRecord::new("audeze maxwell", LeafId(7), 900, 120),
            KeyphraseRecord::new("gaming headphones xbox", LeafId(7), 800, 700),
            KeyphraseRecord::new("usb c charger", LeafId(9), 500, 50),
        ])
        .build()
        .unwrap();
    serialize::to_bytes(&model).to_vec()
}

proptest! {
    /// Arbitrary garbage: always a clean error, never a panic.
    #[test]
    fn arbitrary_bytes_never_panic(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let _ = serialize::from_bytes(&data);
    }

    /// Random single-byte mutations of a valid model: the checksum (or a
    /// structural check) must reject every corruption.
    #[test]
    fn mutated_model_is_rejected(pos in 0usize..1000, xor in 1u8..=255) {
        let mut bytes = sample_bytes();
        let idx = pos % bytes.len();
        bytes[idx] ^= xor;
        prop_assert!(serialize::from_bytes(&bytes).is_err(), "mutation at {idx} accepted");
    }

    /// Random truncations: always rejected.
    #[test]
    fn truncations_are_rejected(cut in 0usize..1000) {
        let bytes = sample_bytes();
        let cut = cut % bytes.len(); // strictly shorter than the valid model
        prop_assert!(serialize::from_bytes(&bytes[..cut]).is_err());
    }

    /// Garbage appended after a valid model: rejected (trailing data means
    /// the reader and writer disagree about the format).
    #[test]
    fn trailing_garbage_is_rejected(tail in prop::collection::vec(any::<u8>(), 1..64)) {
        let mut bytes = sample_bytes();
        bytes.extend_from_slice(&tail);
        prop_assert!(serialize::from_bytes(&bytes).is_err());
    }
}

#[test]
fn valid_model_still_loads() {
    // Guard against the fuzz tests passing because *everything* is rejected.
    let bytes = sample_bytes();
    let model = serialize::from_bytes(&bytes).expect("valid bytes load");
    assert_eq!(model.num_keyphrases(), 3);
}

//! Deserialization robustness: arbitrary and mutated byte streams must
//! never panic, loop, or silently succeed — corrupt model files are an
//! operational reality for anything loaded from disk.
//!
//! The corruption properties are pinned to [`GraphExError::Corrupt`]
//! specifically (not just "some error"): the checksum runs before
//! version dispatch, so no flip or truncation may surface as a bogus
//! `UnsupportedVersion` or — worse — a panic.

use graphex_core::{serialize, GraphExBuilder, GraphExConfig, GraphExError, KeyphraseRecord, LeafId};
use proptest::prelude::*;

fn sample_model() -> graphex_core::GraphExModel {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 0;
    GraphExBuilder::new(config)
        .add_records(vec![
            KeyphraseRecord::new("audeze maxwell", LeafId(7), 900, 120),
            KeyphraseRecord::new("gaming headphones xbox", LeafId(7), 800, 700),
            KeyphraseRecord::new("usb c charger", LeafId(9), 500, 50),
        ])
        .build()
        .unwrap()
}

fn sample_bytes_v2() -> Vec<u8> {
    serialize::to_bytes(&sample_model()).to_vec()
}

fn sample_bytes_v1() -> Vec<u8> {
    serialize::to_bytes_v1(&sample_model()).to_vec()
}

fn assert_corrupt(res: Result<graphex_core::GraphExModel, GraphExError>, what: &str) {
    match res {
        Err(GraphExError::Corrupt(_)) => {}
        Err(other) => panic!("{what}: expected Corrupt, got {other:?}"),
        Ok(_) => panic!("{what}: corrupt bytes accepted"),
    }
}

proptest! {
    /// Arbitrary garbage: always a clean error, never a panic.
    #[test]
    fn arbitrary_bytes_never_panic(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let _ = serialize::from_bytes(&data);
    }

    /// Random single-byte flips of a valid v2 snapshot: always
    /// `Corrupt` — the checksum rejects the flip before any structural
    /// parsing (or version dispatch) can misread it.
    #[test]
    fn v2_byte_flips_are_corrupt(pos in 0usize..100_000, xor in 1u8..=255) {
        let mut bytes = sample_bytes_v2();
        let idx = pos % bytes.len();
        bytes[idx] ^= xor;
        assert_corrupt(serialize::from_bytes(&bytes), "v2 flip");
    }

    /// Random truncations of a v2 snapshot: always `Corrupt`.
    #[test]
    fn v2_truncations_are_corrupt(cut in 0usize..100_000) {
        let bytes = sample_bytes_v2();
        let cut = cut % bytes.len(); // strictly shorter than the valid model
        assert_corrupt(serialize::from_bytes(&bytes[..cut]), "v2 truncation");
    }

    /// The legacy v1 stream holds the same properties.
    #[test]
    fn v1_flips_and_truncations_are_corrupt(pos in 0usize..100_000, xor in 1u8..=255, cut in 0usize..100_000) {
        let mut bytes = sample_bytes_v1();
        let idx = pos % bytes.len();
        bytes[idx] ^= xor;
        assert_corrupt(serialize::from_bytes(&bytes), "v1 flip");

        let bytes = sample_bytes_v1();
        assert_corrupt(serialize::from_bytes(&bytes[..cut % bytes.len()]), "v1 truncation");
    }

    /// Garbage appended after a valid model: rejected (trailing data means
    /// the reader and writer disagree about the format).
    #[test]
    fn trailing_garbage_is_rejected(tail in prop::collection::vec(any::<u8>(), 1..64)) {
        let mut bytes = sample_bytes_v2();
        bytes.extend_from_slice(&tail);
        assert_corrupt(serialize::from_bytes(&bytes), "v2 trailing garbage");
    }

    /// Flips survive the zero-copy path too: `from_shared` (aligned
    /// buffer, borrowed sections) rejects exactly like `from_bytes`.
    #[test]
    fn v2_shared_load_rejects_flips(pos in 0usize..100_000, xor in 1u8..=255) {
        let mut bytes = sample_bytes_v2();
        let idx = pos % bytes.len();
        bytes[idx] ^= xor;
        let shared = bytes::Bytes::from_owner(graphex_core::storage::AlignedBuf::copy_from(&bytes));
        assert_corrupt(serialize::from_shared(shared), "v2 shared flip");
    }

    /// The mmap load path holds the same guarantee: a bit-flipped or
    /// truncated snapshot *file*, loaded through `load_snapshot` with
    /// either backend preference, is `Corrupt` (naming the file), never
    /// a panic or a bogus `UnsupportedVersion`.
    #[test]
    fn mapped_flips_and_truncations_are_corrupt(pos in 0usize..100_000, xor in 1u8..=255, cut in 0usize..100_000, heap in any::<bool>()) {
        let mut bytes = sample_bytes_v2();
        let idx = pos % bytes.len();
        bytes[idx] ^= xor;
        let prefer = if heap { serialize::LoadMode::Heap } else { serialize::LoadMode::Mmap };

        let path = fuzz_file("flip", &bytes);
        match serialize::load_snapshot(&path, prefer) {
            Err(GraphExError::Corrupt(what)) => prop_assert!(what.contains("fuzz-flip"), "path missing: {what}"),
            other => prop_assert!(false, "mapped flip: expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();

        let bytes = sample_bytes_v2();
        let path = fuzz_file("cut", &bytes[..cut % bytes.len()]);
        match serialize::load_snapshot(&path, prefer) {
            Err(GraphExError::Corrupt(_)) => {}
            other => prop_assert!(false, "mapped truncation: expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}

/// Writes fuzz bytes to a per-process temp file (proptest runs cases
/// sequentially, so one file per label cannot race within a test).
fn fuzz_file(label: &str, bytes: &[u8]) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("graphex-fuzz-{label}-{}.gexm", std::process::id()));
    std::fs::write(&path, bytes).expect("write fuzz file");
    path
}

#[test]
fn valid_model_still_loads() {
    // Guard against the fuzz tests passing because *everything* is rejected.
    let bytes = sample_bytes_v2();
    let model = serialize::from_bytes(&bytes).expect("valid v2 bytes load");
    assert_eq!(model.num_keyphrases(), 3);
    let v1 = sample_bytes_v1();
    let model = serialize::from_bytes(&v1).expect("valid v1 bytes load");
    assert_eq!(model.num_keyphrases(), 3);
}

//! Deterministic per-leaf assembly + merge: the building blocks behind
//! both [`crate::GraphExBuilder`] and the `graphex-pipeline` crate's
//! parallel / incremental builds.
//!
//! Construction is decomposed into three order-insensitive stages so that
//! sequential, parallel-sharded, and delta builds all produce **the same
//! bytes** for the same curated record multiset:
//!
//! 1. **Canonicalize** ([`canonicalize`]): sort curated records by
//!    `(leaf, text, search, recall)`. Curation output is a function of the
//!    record multiset (per-record filters, commutative duplicate merge),
//!    so after this sort the whole build is independent of arrival order.
//! 2. **Assemble** ([`LeafAssembly::build`]): build one leaf graph against
//!    *leaf-local* vocabularies. Because a fresh vocabulary assigns ids in
//!    first-occurrence order, the local token ids coincide with CSR row
//!    indices and the local keyphrase ids with label indices — which is
//!    what lets [`LeafAssembly::from_model`] recover the exact assembly
//!    of an unchanged leaf from a previous snapshot (delta builds).
//! 3. **Merge** ([`ModelAssembler`]): fold assemblies into the global
//!    model in ascending-leaf order, re-interning each local vocabulary
//!    into the global ones. Interning a leaf's local vocabulary in local
//!    id order reproduces exactly the global first-occurrence order a
//!    single sequential pass over the canonical record stream would have
//!    produced, so the merged model — and its `GEXM v2` serialization —
//!    is byte-identical no matter how stages 2 ran (1 thread or N).
//!
//! [`leaf_fingerprint`] / [`config_fingerprint`] are the content hashes
//! delta builds store in their build manifest to decide which leaves can
//! be borrowed from the previous snapshot.

use crate::builder::GraphExConfig;
use crate::leaf_graph::LeafGraph;
use crate::model::GraphExModel;
use crate::types::{KeyphraseRecord, LeafId};
use graphex_textkit::{FxHashMap, Tokenizer, Vocab};

/// Sorts curated records into the canonical build order:
/// `(leaf, text, search, recall)` ascending.
///
/// After curation, `(leaf, text)` is unique, so this is a total order and
/// the sorted sequence is a pure function of the record multiset.
pub fn canonicalize(records: &mut [KeyphraseRecord]) {
    records.sort_unstable_by(|a, b| {
        (a.leaf, &a.text, a.search_count, a.recall_count).cmp(&(
            b.leaf,
            &b.text,
            b.search_count,
            b.recall_count,
        ))
    });
}

/// FNV-1a content fingerprint of one leaf's curated records.
///
/// The slice must be in canonical order ([`canonicalize`]) — callers hash
/// the per-leaf runs of the canonicalized stream, so equal record
/// multisets hash equally regardless of how they were ingested.
pub fn leaf_fingerprint(records: &[KeyphraseRecord]) -> u64 {
    let mut h = Fnv::new();
    h.u64(records.len() as u64);
    for rec in records {
        h.bytes(rec.text.as_bytes());
        h.u32(rec.leaf.0);
        h.u32(rec.search_count);
        h.u32(rec.recall_count);
    }
    h.finish()
}

/// Fingerprint of everything in the configuration that affects the built
/// bytes. A delta build may only borrow leaves from a previous snapshot
/// whose manifest recorded the same config fingerprint.
pub fn config_fingerprint(config: &GraphExConfig) -> u64 {
    let mut h = Fnv::new();
    h.u32(config.curation.min_search_count);
    h.u64(config.curation.min_tokens as u64);
    h.u64(config.curation.max_tokens as u64);
    match config.curation.max_per_leaf {
        None => h.u64(u64::MAX),
        Some(cap) => h.u64(cap as u64),
    }
    h.u32(match config.alignment {
        crate::Alignment::Lta => 0,
        crate::Alignment::Wmr => 1,
        crate::Alignment::Jac => 2,
    });
    h.u32(u32::from(config.stemming));
    h.u32(u32::from(config.build_meta_fallback));
    h.finish()
}

/// Folds per-leaf fingerprints (in ascending-leaf order) into one value —
/// the fingerprint of the whole curated corpus, which is what the meta
/// fallback graph depends on.
pub fn combine_fingerprints(fingerprints: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = Fnv::new();
    for fp in fingerprints {
        h.u64(fp);
    }
    h.finish()
}

/// Streaming FNV-1a hasher (same function as the GEXM trailer checksum).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Tokenizers + scratch buffers shared across [`LeafAssembly::build`]
/// calls. One per build thread.
#[derive(Debug)]
pub struct AssemblyContext {
    /// Stemmed (per config) tokenizer: graph-token identity.
    tokenizer: Tokenizer,
    /// Unstemmed tokenizer: keyphrase *text* identity — recommendations
    /// must be exact-match biddable queries while graph tokens are
    /// stemmed for match reach.
    text_normalizer: Tokenizer,
    token_buf: Vec<String>,
    text_buf: Vec<String>,
}

impl AssemblyContext {
    pub fn new(stemming: bool) -> Self {
        Self {
            tokenizer: GraphExModel::make_tokenizer(stemming),
            text_normalizer: GraphExModel::make_tokenizer(false),
            token_buf: Vec::new(),
            text_buf: Vec::new(),
        }
    }
}

/// One leaf graph built against leaf-local vocabularies: the unit of
/// parallel construction and of delta reuse.
///
/// Invariant: `graph.row_tokens()` and `graph.labels()` are the identity
/// over the local vocabularies (`row_tokens[i] == i`, `labels[j] == j`),
/// because a fresh vocabulary assigns ids in first-occurrence order —
/// the same order rows and labels are created in.
#[derive(Debug, Clone)]
pub struct LeafAssembly {
    tokens: Vocab,
    keyphrases: Vocab,
    graph: LeafGraph,
}

impl LeafAssembly {
    /// Builds one leaf's assembly from its curated records (canonical
    /// order). Records whose normalized text collides are merged (sum
    /// search, max recall), mirroring curation's duplicate policy.
    pub fn build(records: &[KeyphraseRecord], ctx: &mut AssemblyContext) -> Self {
        let mut tokens = Vocab::new();
        let mut keyphrases = Vocab::new();

        // local structures
        let mut local_rows: FxHashMap<u32, u32> = FxHashMap::default(); // local token -> row
        let mut row_tokens: Vec<u32> = Vec::new();
        let mut label_index: FxHashMap<u32, u32> = FxHashMap::default(); // local kp id -> label
        let mut labels: Vec<u32> = Vec::new();
        let mut label_len: Vec<u16> = Vec::new();
        let mut search: Vec<u32> = Vec::new();
        let mut recall: Vec<u32> = Vec::new();
        let mut edges: Vec<(u32, u32)> = Vec::new();

        for rec in records {
            // Normalized text identity.
            ctx.text_normalizer.tokenize_into(&rec.text, &mut ctx.text_buf);
            if ctx.text_buf.is_empty() {
                continue; // punctuation-only keyphrase: nothing to match on
            }
            let normalized = ctx.text_buf.join(" ");
            let kp_id = keyphrases.intern(&normalized);

            // Stemmed distinct graph tokens.
            ctx.tokenizer.tokenize_into(&rec.text, &mut ctx.token_buf);
            ctx.token_buf.sort_unstable();
            ctx.token_buf.dedup();
            debug_assert!(!ctx.token_buf.is_empty());

            let local_label = match label_index.entry(kp_id) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let l = *e.get();
                    // duplicate within leaf after normalization: merge counts
                    search[l as usize] = search[l as usize].saturating_add(rec.search_count);
                    recall[l as usize] = recall[l as usize].max(rec.recall_count);
                    continue;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    let l = labels.len() as u32;
                    e.insert(l);
                    labels.push(kp_id);
                    label_len.push(ctx.token_buf.len().min(u16::MAX as usize) as u16);
                    search.push(rec.search_count);
                    recall.push(rec.recall_count);
                    l
                }
            };

            for tok in ctx.token_buf.iter() {
                let local = tokens.intern(tok);
                let row = match local_rows.entry(local) {
                    std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let row = row_tokens.len() as u32;
                        e.insert(row);
                        row_tokens.push(local);
                        row
                    }
                };
                edges.push((row, local_label));
            }
        }

        let graph = LeafGraph::new(row_tokens, edges, labels, label_len, search, recall);
        Self { tokens, keyphrases, graph }
    }

    /// Recovers the assembly of one leaf from an already-built model —
    /// the delta-build borrow path.
    ///
    /// Exact by the identity invariant: a leaf graph's row order *is* its
    /// local token first-occurrence order and its label order its local
    /// keyphrase first-occurrence order, so re-localizing the global ids
    /// reproduces precisely what [`LeafAssembly::build`] over the same
    /// records would have produced. Returns `None` for an unknown leaf.
    pub fn from_model(model: &GraphExModel, leaf: LeafId) -> Option<Self> {
        model.leaf_graph(leaf).map(|g| Self::relocalize(g, model))
    }

    /// [`LeafAssembly::from_model`] for the meta-fallback graph.
    pub fn from_model_fallback(model: &GraphExModel) -> Option<Self> {
        model.fallback_graph().map(|g| Self::relocalize(g, model))
    }

    fn relocalize(graph: &LeafGraph, model: &GraphExModel) -> Self {
        let mut tokens = Vocab::with_capacity(graph.row_tokens().len());
        for &tok in graph.row_tokens() {
            let text = model.tokens.resolve(tok).expect("model token id resolves");
            let local = tokens.intern(text);
            debug_assert_eq!(local as usize + 1, tokens.len());
        }
        let mut keyphrases = Vocab::with_capacity(graph.labels().len());
        for &kp in graph.labels() {
            let text = model.keyphrases.resolve(kp).expect("model keyphrase id resolves");
            let local = keyphrases.intern(text);
            debug_assert_eq!(local as usize + 1, keyphrases.len());
        }
        let identity_rows: Vec<u32> = (0..graph.row_tokens().len() as u32).collect();
        let identity_labels: Vec<u32> = (0..graph.labels().len() as u32).collect();
        let graph = graph.with_ids(identity_rows, identity_labels);
        Self { tokens, keyphrases, graph }
    }

    /// The leaf-local token vocabulary (overlay inference tokenizes
    /// against it directly).
    pub(crate) fn tokens(&self) -> &Vocab {
        &self.tokens
    }

    /// The leaf-local keyphrase vocabulary.
    pub(crate) fn keyphrases(&self) -> &Vocab {
        &self.keyphrases
    }

    /// The assembled leaf graph (local-identity ids).
    pub(crate) fn graph(&self) -> &LeafGraph {
        &self.graph
    }

    /// Number of labels (keyphrases) in this leaf.
    pub fn num_labels(&self) -> u32 {
        self.graph.num_labels()
    }

    /// Number of distinct words in this leaf.
    pub fn num_words(&self) -> u32 {
        self.graph.num_words()
    }
}

/// Folds [`LeafAssembly`]s into a [`GraphExModel`], re-interning local
/// vocabularies into the global ones.
///
/// Leaves must be added in **ascending leaf-id order** (asserted): that
/// order is what pins the global vocabulary layout, and it matches both
/// the canonical sequential pass and the `GEXM` leaf table order.
#[derive(Debug)]
pub struct ModelAssembler {
    tokens: Vocab,
    keyphrases: Vocab,
    leaves: FxHashMap<LeafId, LeafGraph>,
    fallback: Option<Box<LeafGraph>>,
    alignment: crate::Alignment,
    stemming: bool,
    last_leaf: Option<LeafId>,
    /// Remap scratch, reused across leaves.
    tok_map: Vec<u32>,
    kp_map: Vec<u32>,
}

impl ModelAssembler {
    pub fn new(config: &GraphExConfig) -> Self {
        Self {
            tokens: Vocab::new(),
            keyphrases: Vocab::new(),
            leaves: FxHashMap::default(),
            fallback: None,
            alignment: config.alignment,
            stemming: config.stemming,
            last_leaf: None,
            tok_map: Vec::new(),
            kp_map: Vec::new(),
        }
    }

    /// Re-interns `assembly` into the global vocabularies and installs
    /// its graph under `leaf`.
    ///
    /// # Panics
    /// Panics if `leaf` is not strictly greater than the previously added
    /// leaf — out-of-order merges would silently produce a different
    /// (but still valid-looking) vocabulary layout.
    pub fn add_leaf(&mut self, leaf: LeafId, assembly: &LeafAssembly) {
        assert!(
            self.last_leaf.map_or(true, |prev| prev < leaf),
            "leaves must merge in ascending order ({:?} after {:?})",
            leaf,
            self.last_leaf
        );
        self.last_leaf = Some(leaf);
        let graph = self.globalize(assembly);
        self.leaves.insert(leaf, graph);
    }

    /// Re-interns the meta-fallback assembly. Call after every leaf (the
    /// sequential pass builds the fallback last; keeping that order makes
    /// the merge reproduce its vocabulary layout exactly — in practice
    /// the fallback introduces no new strings, but the order is part of
    /// the determinism contract).
    pub fn set_fallback(&mut self, assembly: &LeafAssembly) {
        let graph = self.globalize(assembly);
        self.fallback = Some(Box::new(graph));
    }

    fn globalize(&mut self, assembly: &LeafAssembly) -> LeafGraph {
        self.tok_map.clear();
        self.tok_map.extend(assembly.tokens.iter().map(|(_, s)| self.tokens.intern(s)));
        self.kp_map.clear();
        self.kp_map.extend(assembly.keyphrases.iter().map(|(_, s)| self.keyphrases.intern(s)));
        let row_tokens: Vec<u32> =
            assembly.graph.row_tokens().iter().map(|&t| self.tok_map[t as usize]).collect();
        let labels: Vec<u32> =
            assembly.graph.labels().iter().map(|&l| self.kp_map[l as usize]).collect();
        assembly.graph.with_ids(row_tokens, labels)
    }

    /// The assembled model.
    pub fn finish(self) -> GraphExModel {
        GraphExModel {
            tokenizer: GraphExModel::make_tokenizer(self.stemming),
            tokens: self.tokens,
            keyphrases: self.keyphrases,
            leaves: self.leaves,
            fallback: self.fallback,
            alignment: self.alignment,
            stemming: self.stemming,
        }
    }
}

/// Splits a canonical-sorted curated slice into its consecutive per-leaf
/// runs.
pub fn leaf_runs(sorted: &[KeyphraseRecord]) -> impl Iterator<Item = (LeafId, &[KeyphraseRecord])> {
    LeafRuns { rest: sorted }
}

struct LeafRuns<'a> {
    rest: &'a [KeyphraseRecord],
}

impl<'a> Iterator for LeafRuns<'a> {
    type Item = (LeafId, &'a [KeyphraseRecord]);

    fn next(&mut self) -> Option<Self::Item> {
        let leaf = self.rest.first()?.leaf;
        let end = self.rest.partition_point(|r| r.leaf <= leaf);
        let (run, rest) = self.rest.split_at(end);
        self.rest = rest;
        Some((leaf, run))
    }
}

/// Assembles a model from canonical-sorted curated records: the shared
/// sequential reference path ([`crate::GraphExBuilder`] calls this; the
/// pipeline's parallel build must produce byte-identical output).
pub fn assemble_model(config: &GraphExConfig, curated_sorted: &[KeyphraseRecord]) -> GraphExModel {
    debug_assert!(
        curated_sorted.windows(2).all(|w| {
            (w[0].leaf, &w[0].text, w[0].search_count) <= (w[1].leaf, &w[1].text, w[1].search_count)
        }),
        "records must be canonicalized"
    );
    let mut ctx = AssemblyContext::new(config.stemming);
    let mut assembler = ModelAssembler::new(config);
    for (leaf, run) in leaf_runs(curated_sorted) {
        let assembly = LeafAssembly::build(run, &mut ctx);
        assembler.add_leaf(leaf, &assembly);
    }
    if config.build_meta_fallback {
        assembler.set_fallback(&LeafAssembly::build(curated_sorted, &mut ctx));
    }
    assembler.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphExBuilder;
    use crate::curation::curate;
    use crate::serialize;

    fn rec(text: &str, leaf: u32, s: u32, r: u32) -> KeyphraseRecord {
        KeyphraseRecord::new(text, LeafId(leaf), s, r)
    }

    fn corpus() -> Vec<KeyphraseRecord> {
        let mut out = Vec::new();
        for i in 0..40u32 {
            out.push(rec(&format!("brand{} widget kind{}", i % 7, i % 5), 100 + i % 4, 50 + i, i));
            out.push(rec(&format!("widget accessory v{i}"), 100 + i % 3, 200 + i, 2 * i));
        }
        // duplicates + a punctuation-only phrase
        out.push(rec("brand1 widget kind1", 101, 9, 9));
        out.push(rec("!!!", 102, 500, 1));
        out
    }

    fn no_curation() -> GraphExConfig {
        let mut c = GraphExConfig::default();
        c.curation.min_search_count = 0;
        c
    }

    #[test]
    fn build_is_input_order_independent() {
        let config = no_curation();
        let forward = GraphExBuilder::new(config.clone()).add_records(corpus()).build().unwrap();
        let mut reversed = corpus();
        reversed.reverse();
        let backward = GraphExBuilder::new(config).add_records(reversed).build().unwrap();
        assert_eq!(
            serialize::to_bytes(&forward),
            serialize::to_bytes(&backward),
            "canonicalized build must not depend on record arrival order"
        );
    }

    #[test]
    fn merge_of_assemblies_matches_builder() {
        let config = no_curation();
        let (mut curated, _) = curate(corpus(), &config.curation);
        canonicalize(&mut curated);
        let merged = assemble_model(&config, &curated);
        let reference = GraphExBuilder::new(config).add_records(corpus()).build().unwrap();
        assert_eq!(serialize::to_bytes(&merged), serialize::to_bytes(&reference));
    }

    #[test]
    fn relocalized_assembly_reproduces_bytes() {
        // Build → serialize → load (zero-copy) → relocalize every leaf +
        // fallback → re-merge: the delta-borrow path must reproduce the
        // exact bytes of a from-records build.
        let config = no_curation();
        let model = GraphExBuilder::new(config.clone()).add_records(corpus()).build().unwrap();
        let bytes = serialize::to_bytes(&model);
        let loaded = serialize::from_shared(bytes.clone()).unwrap();

        let mut leaves: Vec<LeafId> = loaded.leaf_ids().collect();
        leaves.sort_unstable();
        let mut assembler = ModelAssembler::new(&config);
        for leaf in leaves {
            let assembly = LeafAssembly::from_model(&loaded, leaf).unwrap();
            assembler.add_leaf(leaf, &assembly);
        }
        assembler.set_fallback(&LeafAssembly::from_model_fallback(&loaded).unwrap());
        let rebuilt = assembler.finish();
        assert_eq!(serialize::to_bytes(&rebuilt), bytes);
    }

    #[test]
    fn mixed_fresh_and_borrowed_leaves_merge_identically() {
        let config = no_curation();
        let (mut curated, _) = curate(corpus(), &config.curation);
        canonicalize(&mut curated);
        let reference = assemble_model(&config, &curated);
        let loaded = serialize::from_shared(serialize::to_bytes(&reference)).unwrap();

        // Rebuild even leaves from records, borrow odd leaves from the
        // previous model; the result must be byte-identical either way.
        let mut ctx = AssemblyContext::new(config.stemming);
        let mut assembler = ModelAssembler::new(&config);
        for (i, (leaf, run)) in leaf_runs(&curated).enumerate() {
            let assembly = if i % 2 == 0 {
                LeafAssembly::build(run, &mut ctx)
            } else {
                LeafAssembly::from_model(&loaded, leaf).unwrap()
            };
            assembler.add_leaf(leaf, &assembly);
        }
        assembler.set_fallback(&LeafAssembly::from_model_fallback(&loaded).unwrap());
        let mixed = assembler.finish();
        assert_eq!(serialize::to_bytes(&mixed), serialize::to_bytes(&reference));
    }

    #[test]
    #[should_panic(expected = "ascending order")]
    fn out_of_order_merge_panics() {
        let config = no_curation();
        let mut ctx = AssemblyContext::new(true);
        let a = LeafAssembly::build(&[rec("a b", 1, 10, 1)], &mut ctx);
        let mut assembler = ModelAssembler::new(&config);
        assembler.add_leaf(LeafId(2), &a);
        assembler.add_leaf(LeafId(1), &a);
    }

    #[test]
    fn fingerprints_are_content_hashes() {
        let a = vec![rec("a b", 1, 10, 1), rec("c d", 1, 20, 2)];
        let mut b = a.clone();
        assert_eq!(leaf_fingerprint(&a), leaf_fingerprint(&b));
        b[1].search_count += 1;
        assert_ne!(leaf_fingerprint(&a), leaf_fingerprint(&b));
        assert_ne!(leaf_fingerprint(&a), leaf_fingerprint(&a[..1]));

        let c1 = GraphExConfig::default();
        let mut c2 = GraphExConfig::default();
        assert_eq!(config_fingerprint(&c1), config_fingerprint(&c2));
        c2.curation.min_search_count += 1;
        assert_ne!(config_fingerprint(&c1), config_fingerprint(&c2));
        let c3 = GraphExConfig { stemming: false, ..GraphExConfig::default() };
        assert_ne!(config_fingerprint(&c1), config_fingerprint(&c3));

        assert_ne!(combine_fingerprints([1, 2]), combine_fingerprints([2, 1]));
    }

    #[test]
    fn leaf_runs_splits_consecutive_groups() {
        let mut records =
            vec![rec("x", 3, 1, 1), rec("y", 1, 1, 1), rec("z", 3, 1, 1), rec("w", 2, 1, 1)];
        canonicalize(&mut records);
        let runs: Vec<(LeafId, usize)> =
            leaf_runs(&records).map(|(leaf, run)| (leaf, run.len())).collect();
        assert_eq!(runs, [(LeafId(1), 1), (LeafId(2), 1), (LeafId(3), 2)]);
        assert!(leaf_runs(&[]).next().is_none());
    }
}

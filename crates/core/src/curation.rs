//! Dataset curation (paper Sec. III-B).
//!
//! GraphEx deliberately trains on *keyphrases only* — never on item-keyphrase
//! click associations — which is how it sheds the MNAR click biases of
//! Sec. I-A2. Curation enforces the head-keyphrase bias: only phrases buyers
//! actually search frequently survive (the paper's production threshold is
//! "searched at least once per day", i.e. 180 over a 6-month window, relaxed
//! to 90 where a category is too small — Table VII quantifies the trade).

use crate::types::KeyphraseRecord;

/// Thresholds applied to raw keyphrase rows before graph construction.
#[derive(Debug, Clone, PartialEq)]
pub struct CurationConfig {
    /// Keep only keyphrases with `search_count >= min_search_count`.
    /// Paper default 180 (once per day over 6 months); Table VII compares 90.
    pub min_search_count: u32,
    /// Drop keyphrases with fewer tokens (1-token queries are usually too
    /// generic to bid on profitably, but the paper keeps them — default 1).
    pub min_tokens: usize,
    /// Drop keyphrases with more tokens (defensive bound; buyer queries are
    /// short).
    pub max_tokens: usize,
    /// Optional cap on keyphrases per leaf, keeping the highest-searched
    /// ones. `None` = uncapped (paper default).
    pub max_per_leaf: Option<usize>,
}

impl Default for CurationConfig {
    fn default() -> Self {
        Self { min_search_count: 180, min_tokens: 1, max_tokens: 12, max_per_leaf: None }
    }
}

impl CurationConfig {
    /// Config with a relaxed search-count threshold (e.g. small categories,
    /// Table II fn. 5: "the constraint was eased for CAT 3").
    pub fn with_min_search_count(min: u32) -> Self {
        Self { min_search_count: min, ..Self::default() }
    }
}

/// What curation kept and why rows were dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CurationStats {
    pub input: usize,
    pub kept: usize,
    pub dropped_low_search: usize,
    pub dropped_token_bounds: usize,
    pub dropped_leaf_cap: usize,
    /// Duplicate (leaf, text) rows merged into an existing row.
    pub merged_duplicates: usize,
}

impl CurationStats {
    /// Folds another stats record into this one. Curation decisions are
    /// per-record and per-`(leaf, text)` group, so summing the stats of
    /// leaf-disjoint shards yields exactly the stats a single global
    /// curation pass would have produced (the build pipeline relies on
    /// this to aggregate per-shard [`Curator`]s).
    pub fn absorb(&mut self, other: &CurationStats) {
        self.input += other.input;
        self.kept += other.kept;
        self.dropped_low_search += other.dropped_low_search;
        self.dropped_token_bounds += other.dropped_token_bounds;
        self.dropped_leaf_cap += other.dropped_leaf_cap;
        self.merged_duplicates += other.merged_duplicates;
    }
}

/// Applies [`CurationConfig`] to raw records.
///
/// Token counting uses a simple whitespace split of the *raw* text — exact
/// token identity is the builder's job; curation only needs a length bound.
/// Duplicate `(leaf, text)` rows are merged: search counts are summed
/// (multiple aggregation windows), recall counts take the max (fresher crawl
/// wins; the absolute value only matters as a rank).
pub fn curate(
    records: impl IntoIterator<Item = KeyphraseRecord>,
    config: &CurationConfig,
) -> (Vec<KeyphraseRecord>, CurationStats) {
    let mut curator = Curator::new(config.clone());
    for rec in records {
        curator.push(rec);
    }
    curator.finish()
}

/// Streaming form of [`curate`]: push records one at a time, then
/// [`Curator::finish`].
///
/// Curation decisions are per-record (threshold/token bounds) and
/// per-`(leaf, text)` group (duplicate merge) and the per-leaf cap is —
/// by definition — per leaf, so the result is a function of the record
/// *multiset*, not the arrival order, and curating leaf-disjoint shards
/// independently is exactly equivalent to one global pass. The build
/// pipeline runs one `Curator` per shard worker on that guarantee.
#[derive(Debug)]
pub struct Curator {
    config: CurationConfig,
    stats: CurationStats,
    /// (leaf, text) -> index into kept
    index: std::collections::HashMap<(u32, String), usize>,
    kept: Vec<KeyphraseRecord>,
}

impl Curator {
    pub fn new(config: CurationConfig) -> Self {
        Self {
            config,
            stats: CurationStats::default(),
            index: std::collections::HashMap::new(),
            kept: Vec::new(),
        }
    }

    /// Applies the per-record filters and duplicate merge to one row.
    pub fn push(&mut self, rec: KeyphraseRecord) {
        self.stats.input += 1;
        let ntokens = rec.text.split_whitespace().count();
        if ntokens < self.config.min_tokens || ntokens > self.config.max_tokens {
            self.stats.dropped_token_bounds += 1;
            return;
        }
        if rec.search_count < self.config.min_search_count {
            self.stats.dropped_low_search += 1;
            return;
        }
        match self.index.entry((rec.leaf.0, rec.text.clone())) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let existing = &mut self.kept[*e.get()];
                existing.search_count = existing.search_count.saturating_add(rec.search_count);
                existing.recall_count = existing.recall_count.max(rec.recall_count);
                self.stats.merged_duplicates += 1;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.kept.len());
                self.kept.push(rec);
            }
        }
    }

    /// Records kept so far (before the leaf cap is applied).
    pub fn len(&self) -> usize {
        self.kept.len()
    }

    pub fn is_empty(&self) -> bool {
        self.kept.is_empty()
    }

    /// Applies the per-leaf cap and returns the surviving rows + stats.
    pub fn finish(self) -> (Vec<KeyphraseRecord>, CurationStats) {
        let Curator { config, mut stats, mut kept, .. } = self;
        if let Some(cap) = config.max_per_leaf {
            // Sort within leaf by search count desc and truncate each leaf group.
            kept.sort_unstable_by(|a, b| {
                (a.leaf, std::cmp::Reverse(a.search_count), &a.text).cmp(&(
                    b.leaf,
                    std::cmp::Reverse(b.search_count),
                    &b.text,
                ))
            });
            let mut out: Vec<KeyphraseRecord> = Vec::with_capacity(kept.len());
            let mut run_leaf = None;
            let mut run_len = 0usize;
            for rec in kept {
                if run_leaf != Some(rec.leaf) {
                    run_leaf = Some(rec.leaf);
                    run_len = 0;
                }
                if run_len < cap {
                    out.push(rec);
                    run_len += 1;
                } else {
                    stats.dropped_leaf_cap += 1;
                }
            }
            kept = out;
        }

        stats.kept = kept.len();
        (kept, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::LeafId;

    fn rec(text: &str, leaf: u32, s: u32, r: u32) -> KeyphraseRecord {
        KeyphraseRecord::new(text, LeafId(leaf), s, r)
    }

    #[test]
    fn threshold_filters_tail() {
        let cfg = CurationConfig::with_min_search_count(100);
        let (kept, stats) = curate(
            vec![rec("head phrase", 1, 500, 10), rec("tail phrase", 1, 5, 10)],
            &cfg,
        );
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].text, "head phrase");
        assert_eq!(stats.dropped_low_search, 1);
        assert_eq!(stats.kept, 1);
    }

    #[test]
    fn token_bounds() {
        let cfg = CurationConfig { min_tokens: 2, max_tokens: 3, min_search_count: 0, max_per_leaf: None };
        let (kept, stats) = curate(
            vec![
                rec("one", 1, 10, 1),
                rec("two tokens", 1, 10, 1),
                rec("three tokens here", 1, 10, 1),
                rec("way too many tokens in here", 1, 10, 1),
            ],
            &cfg,
        );
        assert_eq!(kept.len(), 2);
        assert_eq!(stats.dropped_token_bounds, 2);
    }

    #[test]
    fn duplicates_merge_sum_search_max_recall() {
        let cfg = CurationConfig::with_min_search_count(0);
        let (kept, stats) = curate(
            vec![rec("gaming mouse", 2, 100, 50), rec("gaming mouse", 2, 40, 80)],
            &cfg,
        );
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].search_count, 140);
        assert_eq!(kept[0].recall_count, 80);
        assert_eq!(stats.merged_duplicates, 1);
    }

    #[test]
    fn same_text_different_leaf_not_merged() {
        // The paper: "a keyphrase can be duplicated across different Leaf
        // Categories."
        let cfg = CurationConfig::with_min_search_count(0);
        let (kept, _) = curate(vec![rec("charger", 1, 10, 1), rec("charger", 2, 10, 1)], &cfg);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn leaf_cap_keeps_highest_search() {
        let cfg = CurationConfig { max_per_leaf: Some(2), min_search_count: 0, ..Default::default() };
        let (kept, stats) = curate(
            vec![rec("a b", 1, 10, 1), rec("c d", 1, 30, 1), rec("e f", 1, 20, 1), rec("g h", 2, 1, 1)],
            &cfg,
        );
        let leaf1: Vec<&str> = kept.iter().filter(|r| r.leaf == LeafId(1)).map(|r| r.text.as_str()).collect();
        assert_eq!(leaf1, ["c d", "e f"]);
        assert_eq!(stats.dropped_leaf_cap, 1);
        assert_eq!(kept.len(), 3);
    }

    #[test]
    fn default_matches_paper_production_threshold() {
        assert_eq!(CurationConfig::default().min_search_count, 180);
    }

    #[test]
    fn empty_input() {
        let (kept, stats) = curate(vec![], &CurationConfig::default());
        assert!(kept.is_empty());
        assert_eq!(stats, CurationStats::default());
    }
}

//! Construction phase (paper Sec. III-D).
//!
//! Builds one bipartite CSR graph per leaf category from curated keyphrase
//! records. Construction is deterministic, single-pass, and involves no
//! weight updates or hyper-parameter training — the property that lets
//! GraphEx refresh daily ("completes in under 1 minute", Sec. IV-G).

use crate::alignment::Alignment;
use crate::assembly::{assemble_model, canonicalize};
use crate::curation::{curate, CurationConfig, CurationStats};
use crate::error::{GraphExError, Result};
use crate::model::GraphExModel;
use crate::types::KeyphraseRecord;

/// Model construction options.
#[derive(Debug, Clone)]
pub struct GraphExConfig {
    /// Curation thresholds (Sec. III-B / Table VII).
    pub curation: CurationConfig,
    /// Default ranking alignment (Sec. III-E2 / Table VI). LTA unless
    /// ablating.
    pub alignment: Alignment,
    /// Stem tokens on both the keyphrase and title side (Sec. IV-F1's
    /// "proprietary stemming function to increase the reach of token
    /// matches"). On by default.
    pub stemming: bool,
    /// Also build a meta-category-wide fallback graph used for items whose
    /// leaf has no dedicated graph (cold leaves). On by default.
    pub build_meta_fallback: bool,
}

impl GraphExConfig {
    /// Paper-default configuration.
    pub fn new() -> Self {
        Self {
            curation: CurationConfig::default(),
            alignment: Alignment::Lta,
            stemming: true,
            build_meta_fallback: true,
        }
    }
}

// `Default` must match `new` (derive would give stemming=false).
impl std::default::Default for GraphExConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Accumulates keyphrase records and builds a [`GraphExModel`].
#[derive(Debug, Default)]
pub struct GraphExBuilder {
    config: GraphExConfig,
    records: Vec<KeyphraseRecord>,
}

impl GraphExBuilder {
    pub fn new(config: GraphExConfig) -> Self {
        Self { config, records: Vec::new() }
    }

    /// Adds one raw keyphrase row.
    pub fn add_record(mut self, record: KeyphraseRecord) -> Self {
        self.records.push(record);
        self
    }

    /// Adds many raw keyphrase rows.
    pub fn add_records(mut self, records: impl IntoIterator<Item = KeyphraseRecord>) -> Self {
        self.records.extend(records);
        self
    }

    /// Number of raw records staged so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Builds the model; see [`GraphExBuilder::build_with_stats`].
    pub fn build(self) -> Result<GraphExModel> {
        self.build_with_stats().map(|(m, _)| m)
    }

    /// Builds the model and reports what curation did.
    ///
    /// Construction is canonical: curated records are sorted into the
    /// [`crate::assembly::canonicalize`] order before assembly, so the
    /// resulting model — and its serialized bytes — depend only on the
    /// record *multiset*, never on arrival order. The parallel build
    /// pipeline (`graphex-pipeline`) is pinned byte-identical to this
    /// sequential reference.
    ///
    /// Fails with [`GraphExError::EmptyModel`] if nothing survives curation
    /// (e.g. threshold too strict for a small category — the situation the
    /// paper hit with CAT 3).
    pub fn build_with_stats(self) -> Result<(GraphExModel, CurationStats)> {
        let GraphExBuilder { config, records } = self;
        let (mut curated, stats) = curate(records, &config.curation);
        if curated.is_empty() {
            return Err(GraphExError::EmptyModel);
        }
        canonicalize(&mut curated);
        Ok((assemble_model(&config, &curated), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::InferenceParams;
    use crate::inference::Scratch;
    use crate::types::LeafId;

    fn rec(text: &str, leaf: u32, s: u32, r: u32) -> KeyphraseRecord {
        KeyphraseRecord::new(text, LeafId(leaf), s, r)
    }

    fn no_curation() -> GraphExConfig {
        let mut c = GraphExConfig::default();
        c.curation.min_search_count = 0;
        c
    }

    #[test]
    fn empty_build_fails() {
        let err = GraphExBuilder::new(GraphExConfig::default()).build();
        assert!(matches!(err, Err(GraphExError::EmptyModel)));
    }

    #[test]
    fn all_below_threshold_fails() {
        let err = GraphExBuilder::new(GraphExConfig::default())
            .add_record(rec("rare phrase", 1, 3, 1))
            .build();
        assert!(matches!(err, Err(GraphExError::EmptyModel)));
    }

    #[test]
    fn builds_one_graph_per_leaf_plus_fallback() {
        let model = GraphExBuilder::new(no_curation())
            .add_records(vec![rec("phone case", 1, 10, 1), rec("phone charger", 2, 10, 1)])
            .build()
            .unwrap();
        assert_eq!(model.leaf_ids().count(), 2);
        assert!(model.has_fallback());
        let stats = model.stats();
        // "phone" interned once globally, rows exist in both leaves.
        assert_eq!(stats.num_keyphrases, 2);
    }

    #[test]
    fn stemming_bridges_title_and_keyphrase_forms() {
        let model = GraphExBuilder::new(no_curation())
            .add_record(rec("gaming headphone", 1, 10, 1))
            .build()
            .unwrap();
        // Title uses the plural; keyphrase the singular. Stemming unifies.
        let mut scratch = crate::Scratch::new();
        let preds = model
            .infer_request(&crate::InferRequest::new("gaming headphones bundle", LeafId(1)).k(5), &mut scratch)
            .predictions;
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].matched, 2);
        // Output text preserves the original (normalized) query form.
        assert_eq!(model.keyphrase_text(preds[0].keyphrase), Some("gaming headphone"));
    }

    #[test]
    fn duplicate_normalized_keyphrases_merge() {
        let model = GraphExBuilder::new(no_curation())
            .add_records(vec![rec("Phone Case!", 1, 10, 5), rec("phone case", 1, 7, 9)])
            .build()
            .unwrap();
        let g = model.leaf_graph(LeafId(1)).unwrap();
        assert_eq!(g.num_labels(), 1);
        assert_eq!(g.search_count(0), 17);
        assert_eq!(g.recall_count(0), 9);
    }

    #[test]
    fn repeated_word_in_keyphrase_counts_once() {
        let model = GraphExBuilder::new(no_curation())
            .add_record(rec("case case case", 1, 10, 1))
            .build()
            .unwrap();
        let g = model.leaf_graph(LeafId(1)).unwrap();
        assert_eq!(g.num_words(), 1);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.label_len(0), 1);
    }

    #[test]
    fn punctuation_only_keyphrase_is_skipped() {
        let model = GraphExBuilder::new(no_curation())
            .add_records(vec![rec("!!!", 1, 10, 1), rec("real phrase", 1, 10, 1)])
            .build()
            .unwrap();
        assert_eq!(model.num_keyphrases(), 1);
    }

    #[test]
    fn no_fallback_when_disabled() {
        let mut config = no_curation();
        config.build_meta_fallback = false;
        let model = GraphExBuilder::new(config).add_record(rec("a b", 1, 10, 1)).build().unwrap();
        assert!(!model.has_fallback());
    }

    #[test]
    fn leaf_isolation() {
        // Same word in two leaves must not leak labels across graphs.
        let model = GraphExBuilder::new(no_curation())
            .add_records(vec![rec("apple iphone", 1, 10, 1), rec("apple juice", 2, 10, 1)])
            .build()
            .unwrap();
        let mut scratch = Scratch::new();
        let preds = model
            .infer("fresh apple crate", LeafId(2), &InferenceParams::with_k(10), &mut scratch)
            .unwrap();
        let texts: Vec<&str> = preds.iter().map(|p| model.keyphrase_text(p.keyphrase).unwrap()).collect();
        assert_eq!(texts, ["apple juice"]);
    }

    #[test]
    fn build_with_stats_reports_curation() {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 100;
        let (_, stats) = GraphExBuilder::new(config)
            .add_records(vec![rec("kept phrase", 1, 500, 1), rec("dropped phrase", 1, 3, 1)])
            .build_with_stats()
            .unwrap();
        assert_eq!(stats.kept, 1);
        assert_eq!(stats.dropped_low_search, 1);
    }
}

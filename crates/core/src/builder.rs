//! Construction phase (paper Sec. III-D).
//!
//! Builds one bipartite CSR graph per leaf category from curated keyphrase
//! records. Construction is deterministic, single-pass, and involves no
//! weight updates or hyper-parameter training — the property that lets
//! GraphEx refresh daily ("completes in under 1 minute", Sec. IV-G).

use crate::alignment::Alignment;
use crate::curation::{curate, CurationConfig, CurationStats};
use crate::error::{GraphExError, Result};
use crate::leaf_graph::LeafGraph;
use crate::model::GraphExModel;
use crate::types::{KeyphraseRecord, LeafId};
use graphex_textkit::{FxHashMap, Vocab};

/// Model construction options.
#[derive(Debug, Clone)]
pub struct GraphExConfig {
    /// Curation thresholds (Sec. III-B / Table VII).
    pub curation: CurationConfig,
    /// Default ranking alignment (Sec. III-E2 / Table VI). LTA unless
    /// ablating.
    pub alignment: Alignment,
    /// Stem tokens on both the keyphrase and title side (Sec. IV-F1's
    /// "proprietary stemming function to increase the reach of token
    /// matches"). On by default.
    pub stemming: bool,
    /// Also build a meta-category-wide fallback graph used for items whose
    /// leaf has no dedicated graph (cold leaves). On by default.
    pub build_meta_fallback: bool,
}

impl GraphExConfig {
    /// Paper-default configuration.
    pub fn new() -> Self {
        Self {
            curation: CurationConfig::default(),
            alignment: Alignment::Lta,
            stemming: true,
            build_meta_fallback: true,
        }
    }
}

// `Default` must match `new` (derive would give stemming=false).
impl std::default::Default for GraphExConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Accumulates keyphrase records and builds a [`GraphExModel`].
#[derive(Debug, Default)]
pub struct GraphExBuilder {
    config: GraphExConfig,
    records: Vec<KeyphraseRecord>,
}

impl GraphExBuilder {
    pub fn new(config: GraphExConfig) -> Self {
        Self { config, records: Vec::new() }
    }

    /// Adds one raw keyphrase row.
    pub fn add_record(mut self, record: KeyphraseRecord) -> Self {
        self.records.push(record);
        self
    }

    /// Adds many raw keyphrase rows.
    pub fn add_records(mut self, records: impl IntoIterator<Item = KeyphraseRecord>) -> Self {
        self.records.extend(records);
        self
    }

    /// Number of raw records staged so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Builds the model; see [`GraphExBuilder::build_with_stats`].
    pub fn build(self) -> Result<GraphExModel> {
        self.build_with_stats().map(|(m, _)| m)
    }

    /// Builds the model and reports what curation did.
    ///
    /// Fails with [`GraphExError::EmptyModel`] if nothing survives curation
    /// (e.g. threshold too strict for a small category — the situation the
    /// paper hit with CAT 3).
    pub fn build_with_stats(self) -> Result<(GraphExModel, CurationStats)> {
        let GraphExBuilder { config, records } = self;
        let (curated, stats) = curate(records, &config.curation);
        if curated.is_empty() {
            return Err(GraphExError::EmptyModel);
        }

        let tokenizer = GraphExModel::make_tokenizer(config.stemming);
        // Keyphrase *text* identity is the normalized-but-unstemmed form:
        // recommendations must be exact-match biddable queries, while graph
        // tokens are stemmed for match reach.
        let text_normalizer = GraphExModel::make_tokenizer(false);

        let mut tokens = Vocab::new();
        let mut keyphrases = Vocab::new();

        // Group curated rows by leaf.
        let mut by_leaf: FxHashMap<LeafId, Vec<&KeyphraseRecord>> = FxHashMap::default();
        for rec in &curated {
            by_leaf.entry(rec.leaf).or_default().push(rec);
        }

        let mut leaves: FxHashMap<LeafId, LeafGraph> =
            FxHashMap::with_capacity_and_hasher(by_leaf.len(), Default::default());
        let mut token_buf: Vec<String> = Vec::new();
        let mut text_buf: Vec<String> = Vec::new();

        for (leaf, recs) in &by_leaf {
            let graph = build_leaf(
                recs.iter().copied(),
                &tokenizer,
                &text_normalizer,
                &mut tokens,
                &mut keyphrases,
                &mut token_buf,
                &mut text_buf,
            );
            leaves.insert(*leaf, graph);
        }

        let fallback = if config.build_meta_fallback {
            Some(Box::new(build_leaf(
                curated.iter(),
                &tokenizer,
                &text_normalizer,
                &mut tokens,
                &mut keyphrases,
                &mut token_buf,
                &mut text_buf,
            )))
        } else {
            None
        };

        Ok((
            GraphExModel {
                tokens,
                keyphrases,
                leaves,
                fallback,
                alignment: config.alignment,
                stemming: config.stemming,
                tokenizer,
            },
            stats,
        ))
    }
}

/// Builds one leaf graph from that leaf's records, interning into the global
/// vocabularies. Records whose normalized text collides are merged (sum
/// search, max recall), mirroring curation's duplicate policy.
fn build_leaf<'a>(
    recs: impl Iterator<Item = &'a KeyphraseRecord>,
    tokenizer: &graphex_textkit::Tokenizer,
    text_normalizer: &graphex_textkit::Tokenizer,
    tokens: &mut Vocab,
    keyphrases: &mut Vocab,
    token_buf: &mut Vec<String>,
    text_buf: &mut Vec<String>,
) -> LeafGraph {
    // local structures
    let mut local_rows: FxHashMap<u32, u32> = FxHashMap::default(); // global token -> row
    let mut row_tokens: Vec<u32> = Vec::new();
    let mut label_index: FxHashMap<u32, u32> = FxHashMap::default(); // global kp id -> local label
    let mut labels: Vec<u32> = Vec::new();
    let mut label_len: Vec<u16> = Vec::new();
    let mut search: Vec<u32> = Vec::new();
    let mut recall: Vec<u32> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();

    for rec in recs {
        // Normalized text identity.
        text_normalizer.tokenize_into(&rec.text, text_buf);
        if text_buf.is_empty() {
            continue; // punctuation-only keyphrase: nothing to match on
        }
        let normalized = text_buf.join(" ");
        let kp_id = keyphrases.intern(&normalized);

        // Stemmed distinct graph tokens.
        tokenizer.tokenize_into(&rec.text, token_buf);
        token_buf.sort_unstable();
        token_buf.dedup();
        debug_assert!(!token_buf.is_empty());

        let local_label = match label_index.entry(kp_id) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let l = *e.get();
                // duplicate within leaf after normalization: merge counts
                search[l as usize] = search[l as usize].saturating_add(rec.search_count);
                recall[l as usize] = recall[l as usize].max(rec.recall_count);
                continue;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                let l = labels.len() as u32;
                e.insert(l);
                labels.push(kp_id);
                label_len.push(token_buf.len().min(u16::MAX as usize) as u16);
                search.push(rec.search_count);
                recall.push(rec.recall_count);
                l
            }
        };

        for tok in token_buf.iter() {
            let global = tokens.intern(tok);
            let row = match local_rows.entry(global) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let row = row_tokens.len() as u32;
                    e.insert(row);
                    row_tokens.push(global);
                    row
                }
            };
            edges.push((row, local_label));
        }
    }

    LeafGraph::new(row_tokens, edges, labels, label_len, search, recall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::InferenceParams;
    use crate::inference::Scratch;

    fn rec(text: &str, leaf: u32, s: u32, r: u32) -> KeyphraseRecord {
        KeyphraseRecord::new(text, LeafId(leaf), s, r)
    }

    fn no_curation() -> GraphExConfig {
        let mut c = GraphExConfig::default();
        c.curation.min_search_count = 0;
        c
    }

    #[test]
    fn empty_build_fails() {
        let err = GraphExBuilder::new(GraphExConfig::default()).build();
        assert!(matches!(err, Err(GraphExError::EmptyModel)));
    }

    #[test]
    fn all_below_threshold_fails() {
        let err = GraphExBuilder::new(GraphExConfig::default())
            .add_record(rec("rare phrase", 1, 3, 1))
            .build();
        assert!(matches!(err, Err(GraphExError::EmptyModel)));
    }

    #[test]
    fn builds_one_graph_per_leaf_plus_fallback() {
        let model = GraphExBuilder::new(no_curation())
            .add_records(vec![rec("phone case", 1, 10, 1), rec("phone charger", 2, 10, 1)])
            .build()
            .unwrap();
        assert_eq!(model.leaf_ids().count(), 2);
        assert!(model.has_fallback());
        let stats = model.stats();
        // "phone" interned once globally, rows exist in both leaves.
        assert_eq!(stats.num_keyphrases, 2);
    }

    #[test]
    fn stemming_bridges_title_and_keyphrase_forms() {
        let model = GraphExBuilder::new(no_curation())
            .add_record(rec("gaming headphone", 1, 10, 1))
            .build()
            .unwrap();
        // Title uses the plural; keyphrase the singular. Stemming unifies.
        let mut scratch = crate::Scratch::new();
        let preds = model
            .infer_request(&crate::InferRequest::new("gaming headphones bundle", LeafId(1)).k(5), &mut scratch)
            .predictions;
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].matched, 2);
        // Output text preserves the original (normalized) query form.
        assert_eq!(model.keyphrase_text(preds[0].keyphrase), Some("gaming headphone"));
    }

    #[test]
    fn duplicate_normalized_keyphrases_merge() {
        let model = GraphExBuilder::new(no_curation())
            .add_records(vec![rec("Phone Case!", 1, 10, 5), rec("phone case", 1, 7, 9)])
            .build()
            .unwrap();
        let g = model.leaf_graph(LeafId(1)).unwrap();
        assert_eq!(g.num_labels(), 1);
        assert_eq!(g.search_count(0), 17);
        assert_eq!(g.recall_count(0), 9);
    }

    #[test]
    fn repeated_word_in_keyphrase_counts_once() {
        let model = GraphExBuilder::new(no_curation())
            .add_record(rec("case case case", 1, 10, 1))
            .build()
            .unwrap();
        let g = model.leaf_graph(LeafId(1)).unwrap();
        assert_eq!(g.num_words(), 1);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.label_len(0), 1);
    }

    #[test]
    fn punctuation_only_keyphrase_is_skipped() {
        let model = GraphExBuilder::new(no_curation())
            .add_records(vec![rec("!!!", 1, 10, 1), rec("real phrase", 1, 10, 1)])
            .build()
            .unwrap();
        assert_eq!(model.num_keyphrases(), 1);
    }

    #[test]
    fn no_fallback_when_disabled() {
        let mut config = no_curation();
        config.build_meta_fallback = false;
        let model = GraphExBuilder::new(config).add_record(rec("a b", 1, 10, 1)).build().unwrap();
        assert!(!model.has_fallback());
    }

    #[test]
    fn leaf_isolation() {
        // Same word in two leaves must not leak labels across graphs.
        let model = GraphExBuilder::new(no_curation())
            .add_records(vec![rec("apple iphone", 1, 10, 1), rec("apple juice", 2, 10, 1)])
            .build()
            .unwrap();
        let mut scratch = Scratch::new();
        let preds = model
            .infer("fresh apple crate", LeafId(2), &InferenceParams::with_k(10), &mut scratch)
            .unwrap();
        let texts: Vec<&str> = preds.iter().map(|p| model.keyphrase_text(p.keyphrase).unwrap()).collect();
        assert_eq!(texts, ["apple juice"]);
    }

    #[test]
    fn build_with_stats_reports_curation() {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 100;
        let (_, stats) = GraphExBuilder::new(config)
            .add_records(vec![rec("kept phrase", 1, 500, 1), rec("dropped phrase", 1, 3, 1)])
            .build_with_stats()
            .unwrap();
        assert_eq!(stats.kept, 1);
        assert_eq!(stats.dropped_low_search, 1);
    }
}

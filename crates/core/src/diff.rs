//! Model diffing for daily-refresh observability.
//!
//! GraphEx retrains daily to track query churn (Sec. I-A4: ~2 % of queries
//! change every day). Before swapping a refreshed model into serving, an
//! operator wants to know *how much* changed — a guard against silently
//! shipping a model built from a truncated log. [`diff_models`] compares
//! two models' keyphrase universes per leaf and in aggregate.

use crate::model::GraphExModel;
use crate::types::LeafId;
use std::collections::{BTreeMap, BTreeSet};

/// Per-leaf change set between two models.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LeafDiff {
    /// Keyphrases only in the new model.
    pub added: Vec<String>,
    /// Keyphrases only in the old model.
    pub removed: Vec<String>,
    /// Keyphrases in both.
    pub retained: usize,
}

/// Full diff between an old and a new model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModelDiff {
    /// Leaves present in both models, with their keyphrase changes.
    pub changed_leaves: BTreeMap<u32, LeafDiff>,
    /// Leaves only in the new model.
    pub added_leaves: Vec<LeafId>,
    /// Leaves only in the old model.
    pub removed_leaves: Vec<LeafId>,
    pub total_added: usize,
    pub total_removed: usize,
    pub total_retained: usize,
}

impl ModelDiff {
    /// Fraction of the old universe that changed (added + removed over old
    /// size); the "churn rate" an operator alerts on.
    pub fn churn_rate(&self) -> f64 {
        let old_size = self.total_removed + self.total_retained;
        if old_size == 0 {
            if self.total_added == 0 {
                0.0
            } else {
                1.0
            }
        } else {
            (self.total_added + self.total_removed) as f64 / old_size as f64
        }
    }

    /// True when nothing changed at all.
    pub fn is_empty(&self) -> bool {
        self.total_added == 0
            && self.total_removed == 0
            && self.added_leaves.is_empty()
            && self.removed_leaves.is_empty()
    }

    /// One-paragraph operator summary.
    pub fn summary(&self) -> String {
        format!(
            "{} keyphrases added, {} removed, {} retained ({} leaves changed, {} new leaves, \
             {} dropped leaves; churn {:.1}%)",
            self.total_added,
            self.total_removed,
            self.total_retained,
            self.changed_leaves.len(),
            self.added_leaves.len(),
            self.removed_leaves.len(),
            self.churn_rate() * 100.0
        )
    }
}

/// Keyphrase texts of one leaf as a set.
fn leaf_phrases(model: &GraphExModel, leaf: LeafId) -> BTreeSet<String> {
    match model.leaf_graph(leaf) {
        Some(graph) => (0..graph.num_labels())
            .filter_map(|l| model.keyphrase_text(graph.keyphrase_id(l)))
            .map(str::to_string)
            .collect(),
        None => BTreeSet::new(),
    }
}

/// Diffs `new` against `old`, leaf by leaf.
pub fn diff_models(old: &GraphExModel, new: &GraphExModel) -> ModelDiff {
    let old_leaves: BTreeSet<LeafId> = old.leaf_ids().collect();
    let new_leaves: BTreeSet<LeafId> = new.leaf_ids().collect();

    let mut diff = ModelDiff {
        added_leaves: new_leaves.difference(&old_leaves).copied().collect(),
        removed_leaves: old_leaves.difference(&new_leaves).copied().collect(),
        ..Default::default()
    };

    // Leaves entirely added/removed contribute all their phrases.
    for &leaf in &diff.added_leaves {
        diff.total_added += leaf_phrases(new, leaf).len();
    }
    for &leaf in &diff.removed_leaves {
        diff.total_removed += leaf_phrases(old, leaf).len();
    }

    for &leaf in old_leaves.intersection(&new_leaves) {
        let old_set = leaf_phrases(old, leaf);
        let new_set = leaf_phrases(new, leaf);
        let added: Vec<String> = new_set.difference(&old_set).cloned().collect();
        let removed: Vec<String> = old_set.difference(&new_set).cloned().collect();
        let retained = old_set.intersection(&new_set).count();
        diff.total_added += added.len();
        diff.total_removed += removed.len();
        diff.total_retained += retained;
        if !added.is_empty() || !removed.is_empty() {
            diff.changed_leaves.insert(leaf.0, LeafDiff { added, removed, retained });
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphExBuilder, GraphExConfig};
    use crate::types::KeyphraseRecord;

    fn build(records: Vec<KeyphraseRecord>) -> GraphExModel {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        config.build_meta_fallback = false;
        GraphExBuilder::new(config).add_records(records).build().unwrap()
    }

    fn rec(text: &str, leaf: u32) -> KeyphraseRecord {
        KeyphraseRecord::new(text, LeafId(leaf), 100, 10)
    }

    #[test]
    fn identical_models_diff_empty() {
        let a = build(vec![rec("phone case", 1), rec("phone charger", 2)]);
        let b = build(vec![rec("phone case", 1), rec("phone charger", 2)]);
        let d = diff_models(&a, &b);
        assert!(d.is_empty());
        assert_eq!(d.churn_rate(), 0.0);
        assert_eq!(d.total_retained, 2);
    }

    #[test]
    fn detects_added_and_removed_phrases() {
        let old = build(vec![rec("phone case", 1), rec("old phrase", 1)]);
        let new = build(vec![rec("phone case", 1), rec("new phrase", 1)]);
        let d = diff_models(&old, &new);
        let leaf = &d.changed_leaves[&1];
        assert_eq!(leaf.added, ["new phrase"]);
        assert_eq!(leaf.removed, ["old phrase"]);
        assert_eq!(leaf.retained, 1);
        assert_eq!(d.total_added, 1);
        assert_eq!(d.total_removed, 1);
        assert!((d.churn_rate() - 1.0).abs() < 1e-12); // 2 changes / 2 old
    }

    #[test]
    fn detects_leaf_level_changes() {
        let old = build(vec![rec("a b", 1), rec("c d", 2)]);
        let new = build(vec![rec("a b", 1), rec("e f", 3)]);
        let d = diff_models(&old, &new);
        assert_eq!(d.added_leaves, [LeafId(3)]);
        assert_eq!(d.removed_leaves, [LeafId(2)]);
        assert_eq!(d.total_added, 1);
        assert_eq!(d.total_removed, 1);
        assert_eq!(d.total_retained, 1);
    }

    #[test]
    fn summary_mentions_counts() {
        let old = build(vec![rec("a b", 1)]);
        let new = build(vec![rec("a b", 1), rec("c d", 1)]);
        let s = diff_models(&old, &new).summary();
        assert!(s.contains("1 keyphrases added"), "{s}");
        assert!(s.contains("churn"), "{s}");
    }

    #[test]
    fn daily_refresh_churn_is_visible() {
        // Simulated day-over-day refresh: ~20% of phrases replaced.
        let day0: Vec<KeyphraseRecord> = (0..50).map(|i| rec(&format!("phrase number{i}"), 1)).collect();
        let day1: Vec<KeyphraseRecord> = (10..60).map(|i| rec(&format!("phrase number{i}"), 1)).collect();
        let d = diff_models(&build(day0), &build(day1));
        assert_eq!(d.total_added, 10);
        assert_eq!(d.total_removed, 10);
        assert!((d.churn_rate() - 0.4).abs() < 1e-9);
    }
}

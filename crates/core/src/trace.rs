//! Stage-level request tracing: the span vocabulary and the pooled,
//! allocation-free span buffer threaded through the inference hot path.
//!
//! The serving stack (router → HTTP frontend → `ServingApi` → engine →
//! overlay) records one [`SpanRec`] per *stage* of a request into a
//! [`StageTrace`] that lives inside the pooled [`crate::Scratch`] — so a
//! traced request allocates nothing extra at steady state (the span `Vec`
//! reaches its high-water mark after a handful of requests, exactly like
//! the other scratch buffers). A disabled `StageTrace` records nothing and
//! never reads the clock, so untraced paths pay a single branch per stage.
//!
//! Stages are strictly **non-overlapping** at the top level: when the
//! overlay path runs the mini-graph inference, the nested traversal and
//! ranking spans are suppressed ([`StageTrace::suspend`]) and the whole
//! consult is reported as one [`Stage::OverlayConsult`] span. That
//! invariant is what lets the flight recorder assert
//! `sum(stage spans) ≈ end-to-end latency` per trace.

use std::time::{Duration, Instant};

/// The request stages a trace can attribute time to, in rough hot-path
/// order. The wire names (snake_case, [`Stage::name`]) are the label
/// values of the `graphex_stage_latency_seconds` Prometheus family and
/// the `stage` fields under `/debug/traces`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Time the connection sat in the bounded accept queue before a
    /// worker picked it up (first request on a connection only).
    QueueWait,
    /// HTTP body UTF-8 + JSON parse + envelope decode.
    Parse,
    /// KV store lookup including freshness checks. `detail` is 1 when the
    /// lookup produced a fresh hit that was served, 0 on miss/stale.
    KvLookup,
    /// Follower blocked on a leader's in-flight computation.
    SingleFlightWait,
    /// Overlay mini-graph consult that answered the request. `detail` is
    /// the overlaid leaf id.
    OverlayConsult,
    /// Graph enumeration: token → label fan-out plus count-group pruning
    /// and candidate generation (Algorithm 1).
    Traversal,
    /// Candidate ranking: sort + truncate (Sec. III-E2).
    Ranking,
    /// Response envelope construction and JSON rendering.
    Serialize,
    /// Router-side scatter-gather dispatch to one backend shard.
    /// `detail` is the shard index.
    Fanout,
}

impl Stage {
    /// Every stage, in display order.
    pub const ALL: [Stage; 9] = [
        Stage::QueueWait,
        Stage::Parse,
        Stage::KvLookup,
        Stage::SingleFlightWait,
        Stage::OverlayConsult,
        Stage::Traversal,
        Stage::Ranking,
        Stage::Serialize,
        Stage::Fanout,
    ];

    /// Dense index into per-stage arrays (histograms, counters).
    pub fn index(self) -> usize {
        match self {
            Stage::QueueWait => 0,
            Stage::Parse => 1,
            Stage::KvLookup => 2,
            Stage::SingleFlightWait => 3,
            Stage::OverlayConsult => 4,
            Stage::Traversal => 5,
            Stage::Ranking => 6,
            Stage::Serialize => 7,
            Stage::Fanout => 8,
        }
    }

    /// Wire name (Prometheus label value / JSON `stage` field).
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Parse => "parse",
            Stage::KvLookup => "kv_lookup",
            Stage::SingleFlightWait => "single_flight_wait",
            Stage::OverlayConsult => "overlay_consult",
            Stage::Traversal => "traversal",
            Stage::Ranking => "ranking",
            Stage::Serialize => "serialize",
            Stage::Fanout => "fanout",
        }
    }

    /// Inverse of [`Stage::name`]; used when parsing embedded backend
    /// traces out of a router response.
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|s| s.name() == name)
    }
}

/// One recorded span: a stage, its start offset (as an [`Instant`], later
/// rebased against the trace origin), its duration, and a stage-specific
/// detail word (hit/miss flag, leaf id, shard index — see [`Stage`]).
#[derive(Debug, Clone, Copy)]
pub struct SpanRec {
    pub stage: Stage,
    pub start: Instant,
    pub nanos: u64,
    pub detail: u64,
}

/// Upper bound on spans per trace — a safety valve against a pathological
/// batch; far above anything a `MAX_BATCH`-sized envelope can produce.
const MAX_SPANS: usize = 8192;

/// The pooled span buffer.
///
/// Disabled by default (and after [`Default`]); the serving layer arms it
/// per request when tracing is on. All record paths are `#[inline]` and
/// reduce to one branch when disabled.
#[derive(Debug, Default)]
pub struct StageTrace {
    enabled: bool,
    t0: Option<Instant>,
    spans: Vec<SpanRec>,
}

impl StageTrace {
    /// A trace that records nothing — the untraced hot path.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Arms the buffer for a new request whose origin is `t0`. Clears any
    /// previous spans; capacity is retained (pooled, allocation-free at
    /// steady state).
    pub fn arm(&mut self, t0: Instant) {
        self.enabled = true;
        self.t0 = Some(t0);
        self.spans.clear();
    }

    /// Disarms without dropping capacity, returning the buffer to its
    /// pooled idle state.
    pub fn disarm(&mut self) {
        self.enabled = false;
        self.t0 = None;
        self.spans.clear();
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Trace origin, if armed.
    pub fn origin(&self) -> Option<Instant> {
        self.t0
    }

    /// Reads the clock only when armed. Stage hooks call this once at the
    /// stage boundary and pass the result to [`StageTrace::record`], so a
    /// disabled trace costs two branches and zero syscalls per stage.
    #[inline]
    pub fn clock(&self) -> Option<Instant> {
        if self.enabled { Some(Instant::now()) } else { None }
    }

    /// Records `stage` as spanning `start ..= now`.
    #[inline]
    pub fn record(&mut self, stage: Stage, start: Option<Instant>) {
        self.record_detail(stage, start, 0);
    }

    /// [`StageTrace::record`] with a stage-specific detail word.
    #[inline]
    pub fn record_detail(&mut self, stage: Stage, start: Option<Instant>, detail: u64) {
        if let Some(start) = start {
            if self.enabled {
                let nanos = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                self.push(SpanRec { stage, start, nanos, detail });
            }
        }
    }

    /// Records a span with an explicit duration — used to back-date the
    /// accept-queue wait, which ended before the trace was armed.
    #[inline]
    pub fn record_span(&mut self, stage: Stage, start: Instant, duration: Duration, detail: u64) {
        if self.enabled {
            let nanos = duration.as_nanos().min(u128::from(u64::MAX)) as u64;
            self.push(SpanRec { stage, start, nanos, detail });
        }
    }

    fn push(&mut self, span: SpanRec) {
        if self.spans.len() < MAX_SPANS {
            self.spans.push(span);
        }
    }

    /// Temporarily disables recording (for nested work already covered by
    /// an enclosing span). Returns the previous state for
    /// [`StageTrace::resume`].
    #[inline]
    pub fn suspend(&mut self) -> bool {
        std::mem::replace(&mut self.enabled, false)
    }

    /// Restores the recording state captured by [`StageTrace::suspend`].
    #[inline]
    pub fn resume(&mut self, was_enabled: bool) {
        self.enabled = was_enabled;
    }

    /// The spans recorded so far, in record order.
    pub fn spans(&self) -> &[SpanRec] {
        &self.spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing_and_skips_clock() {
        let mut t = StageTrace::disabled();
        assert!(t.clock().is_none());
        t.record(Stage::Parse, Some(Instant::now()));
        t.record_span(Stage::QueueWait, Instant::now(), Duration::from_millis(1), 0);
        assert!(t.spans().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn armed_trace_records_spans_with_detail() {
        let mut t = StageTrace::disabled();
        let t0 = Instant::now();
        t.arm(t0);
        assert!(t.is_enabled());
        assert_eq!(t.origin(), Some(t0));
        let start = t.clock();
        assert!(start.is_some());
        t.record_detail(Stage::KvLookup, start, 1);
        t.record_span(Stage::QueueWait, t0, Duration::from_micros(250), 0);
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.spans()[0].stage, Stage::KvLookup);
        assert_eq!(t.spans()[0].detail, 1);
        assert_eq!(t.spans()[1].nanos, 250_000);
    }

    #[test]
    fn rearm_clears_previous_spans() {
        let mut t = StageTrace::disabled();
        t.arm(Instant::now());
        t.record(Stage::Parse, t.clock());
        assert_eq!(t.spans().len(), 1);
        t.arm(Instant::now());
        assert!(t.spans().is_empty());
        t.disarm();
        assert!(!t.is_enabled());
    }

    #[test]
    fn suspend_suppresses_nested_spans() {
        let mut t = StageTrace::disabled();
        t.arm(Instant::now());
        let saved = t.suspend();
        assert!(saved);
        t.record(Stage::Traversal, Some(Instant::now()));
        assert!(t.spans().is_empty());
        t.resume(saved);
        t.record(Stage::Ranking, t.clock());
        assert_eq!(t.spans().len(), 1);
        // Suspending a disabled trace stays disabled on resume.
        let mut d = StageTrace::disabled();
        let saved = d.suspend();
        d.resume(saved);
        assert!(!d.is_enabled());
    }

    #[test]
    fn stage_names_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_name(stage.name()), Some(stage));
            assert_eq!(Stage::ALL[stage.index()], stage);
        }
        assert_eq!(Stage::from_name("bogus"), None);
    }
}

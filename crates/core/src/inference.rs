//! Inference phase: Algorithm 1 (Enumeration) + Ranking (paper Sec. III-E).
//!
//! The enumeration step maps every title token through the leaf's bipartite
//! graph and counts, per candidate keyphrase, how many *distinct* title
//! words it shares (`DC(·)` in the paper). The naive formulation collects a
//! list and de-duplicates it — poly-log cost; Sec. III-F replaces that with
//! **count arrays**, implemented here as a generation-stamped array so that
//! clearing between calls is O(1) and steady-state inference does **zero
//! allocation** (all buffers live in [`Scratch`]).

use crate::alignment::Alignment;
use crate::leaf_graph::LeafGraph;
use crate::ranking::{count_group_threshold, sort_predictions};
use crate::types::KeyphraseId;
use graphex_textkit::{TokenId, Tokenizer, Vocab};

/// One recommended keyphrase with the attributes the ranking used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Global keyphrase id; resolve text via
    /// [`crate::GraphExModel::keyphrase_text`].
    pub keyphrase: KeyphraseId,
    /// `c = |T ∩ l|`: distinct label words present in the title.
    pub matched: u16,
    /// `|l|`: distinct words in the label.
    pub label_len: u16,
    /// `S(l)`: search count.
    pub search_count: u32,
    /// `R(l)`: recall count.
    pub recall_count: u32,
    /// `|T|`: distinct *known* words in the title (needed by JAC scoring).
    pub title_len: u16,
}

impl Prediction {
    /// The alignment score as a float, for reporting.
    pub fn score(&self, alignment: Alignment) -> f64 {
        alignment.score(u32::from(self.matched), u32::from(self.label_len), u32::from(self.title_len))
    }

    /// LTA score (the model default), for convenience.
    pub fn lta(&self) -> f64 {
        self.score(Alignment::Lta)
    }
}

/// Inference knobs.
#[derive(Debug, Clone, Copy)]
pub struct InferenceParams {
    /// Requested number of predictions (the paper generates 10–20 in
    /// production; evaluation caps at 40).
    pub k: usize,
    /// Alignment used by ranking; `None` uses the model default.
    pub alignment: Option<Alignment>,
    /// If true, everything in the threshold count-group is returned even
    /// when that exceeds `k` (the paper's pruning semantics). If false
    /// (default), the ranked list is truncated to exactly `k`.
    pub keep_threshold_group: bool,
}

impl InferenceParams {
    pub fn with_k(k: usize) -> Self {
        Self { k, alignment: None, keep_threshold_group: false }
    }
}

impl Default for InferenceParams {
    fn default() -> Self {
        Self::with_k(20)
    }
}

/// Reusable inference workspace.
///
/// Holds the generation-stamped count array, the touched-label list, token
/// buffers and the candidate vector. One `Scratch` per thread; create with
/// [`Scratch::new`] and pass to every [`crate::GraphExModel::infer`] call.
#[derive(Debug, Default)]
pub struct Scratch {
    /// stamp[l] == generation  ⇔  counts[l] is valid for this call.
    stamps: Vec<u32>,
    counts: Vec<u16>,
    generation: u32,
    /// Local label ids touched this call.
    touched: Vec<u32>,
    /// Tokenized title (strings, reused).
    token_buf: Vec<String>,
    /// Distinct known title token ids.
    title_tokens: Vec<TokenId>,
    /// Histogram of candidate counts (index = count).
    group_sizes: Vec<u32>,
    /// Candidate predictions being assembled.
    candidates: Vec<Prediction>,
    /// Pooled span buffer: armed per request when tracing is on, disabled
    /// (one branch per stage hook) otherwise.
    pub(crate) trace: crate::trace::StageTrace,
}

impl Scratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the stamped count array covers `num_labels` labels.
    fn ensure_labels(&mut self, num_labels: usize) {
        if self.stamps.len() < num_labels {
            self.stamps.resize(num_labels, 0);
            self.counts.resize(num_labels, 0);
        }
    }

    /// Starts a new call: O(1) logical clear of the count array.
    fn next_generation(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Wrapped: physically reset stamps so stale entries can't alias.
            self.stamps.fill(0);
            self.generation = 1;
        }
        self.touched.clear();
        self.candidates.clear();
    }
}

/// Tokenizes `title` and produces the distinct known-token list in
/// `scratch.title_tokens`. Unknown words (not in the model vocabulary) are
/// dropped — the permutation problem only ranges over words that appear in
/// some keyphrase (Sec. III-A: "if a title token is not part of any
/// keyphrase then it is ignored").
pub(crate) fn collect_title_tokens(
    tokenizer: &Tokenizer,
    vocab: &Vocab,
    title: &str,
    scratch: &mut Scratch,
) {
    tokenizer.tokenize_into(title, &mut scratch.token_buf);
    scratch.title_tokens.clear();
    for tok in &scratch.token_buf {
        if let Some(id) = vocab.get(tok) {
            scratch.title_tokens.push(id);
        }
    }
    scratch.title_tokens.sort_unstable();
    scratch.title_tokens.dedup();
}

/// Runs enumeration + ranking against one leaf graph. Returns predictions
/// sorted in ranking order (best first).
///
/// This is the engine behind [`crate::GraphExModel::infer`]; it is exposed
/// at crate level so benches can drive a graph directly.
pub(crate) fn infer_on_graph(
    graph: &LeafGraph,
    alignment: Alignment,
    params: &InferenceParams,
    scratch: &mut Scratch,
) -> Vec<Prediction> {
    scratch.ensure_labels(graph.num_labels() as usize);
    scratch.next_generation();
    let generation = scratch.generation;
    let traversal_start = scratch.trace.clock();

    // --- Enumeration (Algorithm 1 lines 3–6, count-array variant) ---
    for &tok in &scratch.title_tokens {
        for &label in graph.labels_of_token(tok) {
            let l = label as usize;
            if scratch.stamps[l] != generation {
                scratch.stamps[l] = generation;
                scratch.counts[l] = 0;
                scratch.touched.push(label);
            }
            // Distinct title tokens guaranteed by collect_title_tokens, and
            // CSR edges are deduplicated, so each (word, label) pair
            // increments at most once: counts[l] == |T ∩ l|.
            scratch.counts[l] += 1;
        }
    }

    if scratch.touched.is_empty() {
        scratch.trace.record(crate::trace::Stage::Traversal, traversal_start);
        return Vec::new();
    }
    let title_len = scratch.title_tokens.len() as u32;

    // --- Count-group pruning (Sec. III-F) ---
    let max_count = usize::from(*scratch.touched.iter().map(|&l| &scratch.counts[l as usize]).max().unwrap());
    scratch.group_sizes.clear();
    scratch.group_sizes.resize(max_count + 1, 0);
    for &l in &scratch.touched {
        scratch.group_sizes[usize::from(scratch.counts[l as usize])] += 1;
    }
    let threshold = count_group_threshold(&scratch.group_sizes, params.k);

    // --- Tuple generation (Algorithm 1 lines 7–8) for surviving labels ---
    for &l in &scratch.touched {
        let c = scratch.counts[l as usize];
        if u32::from(c) < threshold {
            continue;
        }
        scratch.candidates.push(Prediction {
            keyphrase: graph.keyphrase_id(l),
            matched: c,
            label_len: graph.label_len(l),
            search_count: graph.search_count(l),
            recall_count: graph.recall_count(l),
            title_len: title_len as u16,
        });
    }

    // --- Ranking (Sec. III-E2) ---
    scratch.trace.record(crate::trace::Stage::Traversal, traversal_start);
    let ranking_start = scratch.trace.clock();
    sort_predictions(&mut scratch.candidates, alignment, title_len);
    let take = if params.keep_threshold_group {
        scratch.candidates.len()
    } else {
        params.k.min(scratch.candidates.len())
    };
    let out = scratch.candidates[..take].to_vec();
    scratch.trace.record(crate::trace::Stage::Ranking, ranking_start);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leaf_graph::LeafGraph;

    /// Figure 3 graph with token ids equal to row index.
    fn figure3() -> LeafGraph {
        LeafGraph::new(
            vec![0, 1, 2, 3, 4, 5, 6],
            vec![
                (0, 0), (1, 0), (0, 1), (2, 1), (3, 2), (2, 2), (4, 2),
                (5, 3), (2, 3), (4, 3), (6, 4), (5, 4), (2, 4),
            ],
            vec![10, 11, 12, 13, 14],
            vec![2, 2, 3, 3, 3],
            vec![900, 450, 800, 650, 300],
            vec![120, 300, 700, 800, 900],
        )
    }

    fn run(graph: &LeafGraph, tokens: &[u32], params: InferenceParams) -> Vec<Prediction> {
        let mut scratch = Scratch::new();
        scratch.title_tokens = tokens.to_vec();
        infer_on_graph(graph, Alignment::Lta, &params, &mut scratch)
    }

    #[test]
    fn figure3_counts_match_paper() {
        // Title "audeze maxwell gaming headphones for xbox" → tokens
        // {0,1,3,2,4} ("for" unknown). Paper: duplication counts 2,2,3,2,1.
        let g = figure3();
        let preds = run(&g, &[0, 1, 2, 3, 4], InferenceParams { k: 10, alignment: None, keep_threshold_group: true });
        let by_kp: std::collections::HashMap<u32, u16> = preds.iter().map(|p| (p.keyphrase, p.matched)).collect();
        assert_eq!(by_kp[&10], 2);
        assert_eq!(by_kp[&11], 2);
        assert_eq!(by_kp[&12], 3);
        assert_eq!(by_kp[&13], 2);
        assert_eq!(by_kp[&14], 1);
    }

    #[test]
    fn ranking_puts_full_match_first() {
        let g = figure3();
        let preds = run(&g, &[0, 1, 2, 3, 4], InferenceParams::with_k(5));
        // "gaming headphones xbox" fully matched: LTA 3/1 = 3.0 — rank 1.
        assert_eq!(preds[0].keyphrase, 12);
        // then "audeze maxwell" (2/1), "audeze headphones" (2/1, lower S)
        assert_eq!(preds[1].keyphrase, 10);
        assert_eq!(preds[2].keyphrase, 11);
    }

    #[test]
    fn k_truncates_but_threshold_group_can_exceed() {
        let g = figure3();
        let strict = run(&g, &[0, 1, 2, 3, 4], InferenceParams::with_k(2));
        assert_eq!(strict.len(), 2);
        let grouped = run(
            &g,
            &[0, 1, 2, 3, 4],
            InferenceParams { k: 2, alignment: None, keep_threshold_group: true },
        );
        // k=2 → threshold count = 2 (group sizes: c=3→1, c=2→3) → the whole
        // c≥2 set (4 labels) is kept.
        assert_eq!(grouped.len(), 4);
    }

    #[test]
    fn no_known_tokens_yields_empty() {
        let g = figure3();
        assert!(run(&g, &[], InferenceParams::default()).is_empty());
        assert!(run(&g, &[999], InferenceParams::default()).is_empty());
    }

    #[test]
    fn scratch_reuse_is_clean_across_calls() {
        let g = figure3();
        let mut scratch = Scratch::new();
        scratch.title_tokens = vec![0, 1]; // audeze maxwell
        let first = infer_on_graph(&g, Alignment::Lta, &InferenceParams::with_k(10), &mut scratch);
        scratch.title_tokens = vec![6]; // bluetooth
        let second = infer_on_graph(&g, Alignment::Lta, &InferenceParams::with_k(10), &mut scratch);
        // Second call must not inherit counts from the first.
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].keyphrase, 14);
        assert_eq!(second[0].matched, 1);
        assert!(first.len() >= 2);
    }

    #[test]
    fn generation_wrap_resets_stamps() {
        let g = figure3();
        let mut scratch = Scratch::new();
        scratch.generation = u32::MAX; // force wrap on next call
        scratch.title_tokens = vec![0];
        let preds = infer_on_graph(&g, Alignment::Lta, &InferenceParams::with_k(10), &mut scratch);
        assert_eq!(preds.len(), 2);
        assert!(preds.iter().all(|p| p.matched == 1));
    }

    #[test]
    fn prediction_score_accessors() {
        let p = Prediction { keyphrase: 1, matched: 2, label_len: 3, search_count: 9, recall_count: 1, title_len: 6 };
        assert!((p.lta() - 1.0).abs() < 1e-12);
        assert!((p.score(Alignment::Wmr) - 2.0 / 3.0).abs() < 1e-12);
    }
}

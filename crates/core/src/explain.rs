//! Interpretability (paper Sec. III-G).
//!
//! GraphEx is transparent by construction: every prediction traces to the
//! exact title tokens that reached it through the bipartite graph. This
//! module materializes that trace as data, so UIs and audits don't have to
//! re-derive it (the paper contrasts this with post-hoc LIME/SHAP on
//! neural models).

use crate::error::Result;
use crate::inference::{InferenceParams, Prediction, Scratch};
use crate::model::GraphExModel;
use crate::types::LeafId;

/// A prediction with its full token-level provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainedPrediction {
    pub prediction: Prediction,
    /// The keyphrase text.
    pub text: String,
    /// Keyphrase tokens present in the title (the `c` tokens driving the
    /// recommendation).
    pub matched_tokens: Vec<String>,
    /// Keyphrase tokens *not* in the title — the "risk" tokens LTA
    /// penalizes (each could change the product).
    pub missing_tokens: Vec<String>,
    /// The alignment score under the model's configured alignment.
    pub score: f64,
}

impl ExplainedPrediction {
    /// One-line human-readable rationale.
    pub fn rationale(&self) -> String {
        let mut s = format!(
            "{:?} scores {:.2}: {} of {} tokens come from the title ({})",
            self.text,
            self.score,
            self.prediction.matched,
            self.prediction.label_len,
            self.matched_tokens.join(", "),
        );
        if !self.missing_tokens.is_empty() {
            s.push_str(&format!("; risky tokens not in title: {}", self.missing_tokens.join(", ")));
        }
        s.push_str(&format!(
            "; searched {} times, {} items recalled",
            self.prediction.search_count, self.prediction.recall_count
        ));
        s
    }
}

impl GraphExModel {
    /// Like [`GraphExModel::infer`], but each prediction carries its full
    /// token-level explanation. Not allocation-free — use on the
    /// seller-facing/debugging path, not in batch loops.
    pub fn explain(
        &self,
        title: &str,
        leaf: LeafId,
        params: &InferenceParams,
        scratch: &mut Scratch,
    ) -> Result<Vec<ExplainedPrediction>> {
        let preds = self.infer(title, leaf, params, scratch)?;
        let title_tokens: Vec<String> = {
            let mut t = self.tokenize_title(title);
            t.sort_unstable();
            t.dedup();
            t
        };
        let alignment = params.alignment.unwrap_or(self.alignment());
        Ok(preds
            .into_iter()
            .map(|prediction| {
                let text = self
                    .keyphrase_text(prediction.keyphrase)
                    .unwrap_or_default()
                    .to_string();
                let mut kp_tokens = self.tokenize_title(&text);
                kp_tokens.sort_unstable();
                kp_tokens.dedup();
                let (matched_tokens, missing_tokens): (Vec<String>, Vec<String>) = kp_tokens
                    .into_iter()
                    .partition(|t| title_tokens.binary_search(t).is_ok());
                let score = prediction.score(alignment);
                ExplainedPrediction { prediction, text, matched_tokens, missing_tokens, score }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphExBuilder, GraphExConfig};
    use crate::types::KeyphraseRecord;

    fn model() -> GraphExModel {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        GraphExBuilder::new(config)
            .add_records(vec![
                KeyphraseRecord::new("audeze maxwell", LeafId(7), 900, 120),
                KeyphraseRecord::new("wireless headphones xbox", LeafId(7), 650, 800),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn explanation_partitions_tokens() {
        let model = model();
        let mut scratch = Scratch::new();
        let explained = model
            .explain(
                "audeze maxwell gaming headphones",
                LeafId(7),
                &InferenceParams::with_k(5),
                &mut scratch,
            )
            .unwrap();
        assert_eq!(explained.len(), 2);
        let full = explained.iter().find(|e| e.text == "audeze maxwell").unwrap();
        assert_eq!(full.matched_tokens, ["audeze", "maxwell"]);
        assert!(full.missing_tokens.is_empty());
        let partial = explained.iter().find(|e| e.text == "wireless headphones xbox").unwrap();
        // stemming: "headphones" → "headphone" on both sides
        assert_eq!(partial.matched_tokens, ["headphone"]);
        assert_eq!(partial.missing_tokens, ["wireless", "xbox"]);
    }

    #[test]
    fn matched_count_agrees_with_prediction() {
        let model = model();
        let mut scratch = Scratch::new();
        for e in model
            .explain("audeze wireless xbox", LeafId(7), &InferenceParams::with_k(5), &mut scratch)
            .unwrap()
        {
            assert_eq!(e.matched_tokens.len(), usize::from(e.prediction.matched));
            assert_eq!(
                e.matched_tokens.len() + e.missing_tokens.len(),
                usize::from(e.prediction.label_len)
            );
        }
    }

    #[test]
    fn rationale_is_complete() {
        let model = model();
        let mut scratch = Scratch::new();
        let explained = model
            .explain("audeze maxwell", LeafId(7), &InferenceParams::with_k(1), &mut scratch)
            .unwrap();
        let r = explained[0].rationale();
        assert!(r.contains("audeze maxwell"));
        assert!(r.contains("2 of 2"));
        assert!(r.contains("900"));
    }

    #[test]
    fn explain_matches_infer_order() {
        let model = model();
        let mut scratch = Scratch::new();
        let params = InferenceParams::with_k(5);
        let preds = model.infer("audeze wireless headphones", LeafId(7), &params, &mut scratch).unwrap();
        let explained =
            model.explain("audeze wireless headphones", LeafId(7), &params, &mut scratch).unwrap();
        assert_eq!(preds.len(), explained.len());
        for (p, e) in preds.iter().zip(&explained) {
            assert_eq!(*p, e.prediction);
        }
    }
}

//! Per-leaf-category bipartite graph (paper Sec. III-D).
//!
//! One [`LeafGraph`] per leaf category: words of the leaf's curated
//! keyphrases on the left (`X`), the keyphrases themselves on the right
//! (`Y`), stored as CSR from word-rows to leaf-local label indices. Label
//! attributes (global keyphrase id, distinct token count, Search/Recall
//! counts) live in parallel arrays indexed by local label id, so `S(l)` /
//! `R(l)` are unit-time lookups exactly as the paper requires.

use crate::csr::Csr;
use crate::storage::{U16Store, U32Store};
use crate::types::KeyphraseId;
use graphex_textkit::{FxHashMap, TokenId};

/// Bipartite word→keyphrase graph for one leaf category.
///
/// All integer arrays are stores: owned when the graph was built
/// in-process (or loaded from a v1 file), borrowed zero-copy from the
/// snapshot buffer when loaded from `GEXM v2`. Only `word_rows` — the
/// token → row hash index — is materialized at load time, and that is
/// O(words), not O(edges).
#[derive(Debug, Clone)]
pub struct LeafGraph {
    /// Global token id → CSR row. One probe per title token at inference.
    word_rows: FxHashMap<TokenId, u32>,
    /// Row `r` (a word) ↦ local label indices containing that word.
    csr: Csr,
    /// Local label index → global keyphrase id.
    labels: U32Store,
    /// Distinct token count `|l|` per label (u16: queries are short).
    label_len: U16Store,
    /// Search count `S(l)` per label.
    search: U32Store,
    /// Recall count `R(l)` per label.
    recall: U32Store,
    /// Row → global token id (inverse of `word_rows`; needed for
    /// serialization and introspection).
    row_tokens: U32Store,
}

impl LeafGraph {
    /// Assembles a leaf graph from its parts. `edges` are
    /// `(row, local_label)` pairs; rows must be dense `0..row_tokens.len()`.
    ///
    /// # Panics
    /// Panics if the parallel arrays disagree in length or an edge is out of
    /// bounds — construction bugs, not data errors.
    pub(crate) fn new(
        row_tokens: Vec<TokenId>,
        edges: Vec<(u32, u32)>,
        labels: Vec<KeyphraseId>,
        label_len: Vec<u16>,
        search: Vec<u32>,
        recall: Vec<u32>,
    ) -> Self {
        assert_eq!(labels.len(), label_len.len());
        assert_eq!(labels.len(), search.len());
        assert_eq!(labels.len(), recall.len());
        let num_rows = row_tokens.len() as u32;
        let num_labels = labels.len() as u32;
        debug_assert!(edges.iter().all(|&(_, l)| l < num_labels), "edge label out of bounds");
        let csr = Csr::from_edges(num_rows, edges);
        let mut word_rows = FxHashMap::with_capacity_and_hasher(row_tokens.len(), Default::default());
        for (row, &tok) in row_tokens.iter().enumerate() {
            let prev = word_rows.insert(tok, row as u32);
            debug_assert!(prev.is_none(), "duplicate token in row_tokens");
        }
        Self {
            word_rows,
            csr,
            labels: labels.into(),
            label_len: label_len.into(),
            search: search.into(),
            recall: recall.into(),
            row_tokens: row_tokens.into(),
        }
    }

    /// Labels containing the word with global token id `tok` (sorted local
    /// label indices); empty if the word doesn't occur in this leaf.
    #[inline]
    pub fn labels_of_token(&self, tok: TokenId) -> &[u32] {
        match self.word_rows.get(&tok) {
            Some(&row) => self.csr.neighbors(row),
            None => &[],
        }
    }

    /// Global keyphrase id of a local label.
    #[inline]
    pub fn keyphrase_id(&self, label: u32) -> KeyphraseId {
        self.labels[label as usize]
    }

    /// Distinct token count `|l|`.
    #[inline]
    pub fn label_len(&self, label: u32) -> u16 {
        self.label_len[label as usize]
    }

    /// Search count `S(l)`.
    #[inline]
    pub fn search_count(&self, label: u32) -> u32 {
        self.search[label as usize]
    }

    /// Recall count `R(l)`.
    #[inline]
    pub fn recall_count(&self, label: u32) -> u32 {
        self.recall[label as usize]
    }

    /// Number of distinct words `|X|`.
    pub fn num_words(&self) -> u32 {
        self.csr.num_rows()
    }

    /// Number of labels `|Y|`.
    pub fn num_labels(&self) -> u32 {
        self.labels.len() as u32
    }

    /// Number of word→label edges `|E|`.
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// `d_avg = |E| / |X|`.
    pub fn avg_degree(&self) -> f64 {
        self.csr.avg_degree()
    }

    /// Approximate heap footprint (Fig. 6b accounting).
    pub fn heap_bytes(&self) -> usize {
        self.csr.heap_bytes()
            + self.labels.len() * 4
            + self.label_len.len() * 2
            + self.search.len() * 4
            + self.recall.len() * 4
            + self.row_tokens.len() * 4
            // FxHashMap entry ≈ key+value+control byte, amortized 1.14 load
            + self.word_rows.len() * 9
    }

    // ---- serialization accessors -------------------------------------

    pub(crate) fn row_tokens(&self) -> &[TokenId] {
        &self.row_tokens
    }

    pub(crate) fn csr_parts(&self) -> (&[u32], &[u32]) {
        self.csr.as_parts()
    }

    pub(crate) fn labels(&self) -> &[KeyphraseId] {
        &self.labels
    }

    pub(crate) fn label_lens(&self) -> &[u16] {
        &self.label_len
    }

    pub(crate) fn searches(&self) -> &[u32] {
        &self.search
    }

    pub(crate) fn recalls(&self) -> &[u32] {
        &self.recall
    }

    /// Rebuild from serialized parts with validation.
    pub(crate) fn from_serialized(
        row_tokens: Vec<TokenId>,
        offsets: Vec<u32>,
        targets: Vec<u32>,
        labels: Vec<KeyphraseId>,
        label_len: Vec<u16>,
        search: Vec<u32>,
        recall: Vec<u32>,
    ) -> Result<Self, String> {
        Self::from_stores(
            row_tokens.into(),
            offsets.into(),
            targets.into(),
            labels.into(),
            label_len.into(),
            search.into(),
            recall.into(),
        )
    }

    /// [`LeafGraph::from_serialized`] over store-typed arrays. This is the
    /// zero-copy load path: every store may be a borrowed view into the
    /// snapshot buffer; validation reads the arrays (CSR monotonicity,
    /// parallel lengths, duplicate rows) but copies nothing per edge.
    #[allow(clippy::too_many_arguments)] // mirrors the 7 serialized arrays
    pub(crate) fn from_stores(
        row_tokens: U32Store,
        offsets: U32Store,
        targets: U32Store,
        labels: U32Store,
        label_len: U16Store,
        search: U32Store,
        recall: U32Store,
    ) -> Result<Self, String> {
        if labels.len() != label_len.len() || labels.len() != search.len() || labels.len() != recall.len() {
            return Err("leaf graph: parallel label arrays disagree in length".into());
        }
        if offsets.len() != row_tokens.len() + 1 {
            return Err("leaf graph: offsets/rows mismatch".into());
        }
        let csr = Csr::from_stores(offsets, targets)?;
        let num_labels = labels.len() as u32;
        if csr.edges().any(|(_, l)| l >= num_labels) {
            return Err("leaf graph: edge target out of label range".into());
        }
        let mut word_rows = FxHashMap::with_capacity_and_hasher(row_tokens.len(), Default::default());
        for (row, &tok) in row_tokens.iter().enumerate() {
            if word_rows.insert(tok, row as u32).is_some() {
                return Err("leaf graph: duplicate token row".into());
            }
        }
        Ok(Self { word_rows, csr, labels, label_len, search, recall, row_tokens })
    }

    /// Whether this graph's arrays borrow from a shared snapshot buffer
    /// (true exactly for graphs loaded through the zero-copy v2 path).
    pub fn is_zero_copy(&self) -> bool {
        self.labels.is_view()
    }

    /// The same graph with its id arrays rewritten — the assembly-merge
    /// remap (local → global ids) and its inverse (relocalization for
    /// delta borrows). CSR structure, label lengths, and score arrays are
    /// shared/cloned untouched: only *which* vocabulary the ids point
    /// into changes, never the topology.
    ///
    /// # Panics
    /// Panics if the replacement arrays disagree in length with the
    /// originals or contain duplicate tokens (remap bugs, not data
    /// errors).
    pub(crate) fn with_ids(&self, row_tokens: Vec<TokenId>, labels: Vec<KeyphraseId>) -> Self {
        assert_eq!(row_tokens.len(), self.row_tokens.len());
        assert_eq!(labels.len(), self.labels.len());
        let mut word_rows = FxHashMap::with_capacity_and_hasher(row_tokens.len(), Default::default());
        for (row, &tok) in row_tokens.iter().enumerate() {
            let prev = word_rows.insert(tok, row as u32);
            assert!(prev.is_none(), "duplicate token after id remap");
        }
        Self {
            word_rows,
            csr: self.csr.clone(),
            labels: labels.into(),
            label_len: self.label_len.clone(),
            search: self.search.clone(),
            recall: self.recall.clone(),
            row_tokens: row_tokens.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 3 example graph: 7 words × 5 keyphrases.
    pub(crate) fn figure3_graph() -> (LeafGraph, Vec<&'static str>) {
        // word rows: 0 audeze, 1 maxwell, 2 headphones, 3 gaming, 4 xbox,
        //            5 wireless, 6 bluetooth   (token ids == rows here)
        // labels: 0 "audeze maxwell" 1 "audeze headphones"
        //         2 "gaming headphones xbox" 3 "wireless headphones xbox"
        //         4 "bluetooth wireless headphones"
        let row_tokens = vec![0, 1, 2, 3, 4, 5, 6];
        let edges = vec![
            (0, 0), (1, 0),                  // audeze maxwell
            (0, 1), (2, 1),                  // audeze headphones
            (3, 2), (2, 2), (4, 2),          // gaming headphones xbox
            (5, 3), (2, 3), (4, 3),          // wireless headphones xbox
            (6, 4), (5, 4), (2, 4),          // bluetooth wireless headphones
        ];
        let labels = vec![10, 11, 12, 13, 14]; // arbitrary global ids
        let label_len = vec![2, 2, 3, 3, 3];
        let search = vec![900, 450, 800, 650, 300];
        let recall = vec![120, 300, 700, 800, 900];
        let graph = LeafGraph::new(row_tokens, edges, labels, label_len, search, recall);
        let words = vec!["audeze", "maxwell", "headphones", "gaming", "xbox", "wireless", "bluetooth"];
        (graph, words)
    }

    #[test]
    fn figure3_counts() {
        let (g, _) = figure3_graph();
        assert_eq!(g.num_words(), 7);
        assert_eq!(g.num_labels(), 5);
        assert_eq!(g.num_edges(), 13);
    }

    #[test]
    fn adjacency_matches_figure3() {
        let (g, _) = figure3_graph();
        // "headphones" (token 2) occurs in labels 1,2,3,4.
        assert_eq!(g.labels_of_token(2), &[1, 2, 3, 4]);
        // "audeze" (token 0) in labels 0,1.
        assert_eq!(g.labels_of_token(0), &[0, 1]);
        // unknown word
        assert_eq!(g.labels_of_token(999), &[] as &[u32]);
    }

    #[test]
    fn attribute_lookups_are_indexed() {
        let (g, _) = figure3_graph();
        assert_eq!(g.keyphrase_id(0), 10);
        assert_eq!(g.label_len(2), 3);
        assert_eq!(g.search_count(0), 900);
        assert_eq!(g.recall_count(4), 900);
    }

    #[test]
    fn from_serialized_validates() {
        // offsets/rows mismatch
        let bad = LeafGraph::from_serialized(vec![1, 2], vec![0, 0], vec![], vec![], vec![], vec![], vec![]);
        assert!(bad.is_err());
        // edge target out of range
        let bad = LeafGraph::from_serialized(
            vec![7],
            vec![0, 1],
            vec![5],
            vec![42],
            vec![1],
            vec![1],
            vec![1],
        );
        assert!(bad.unwrap_err().contains("out of label range"));
        // parallel array mismatch
        let bad = LeafGraph::from_serialized(vec![], vec![0], vec![], vec![9], vec![], vec![1], vec![1]);
        assert!(bad.is_err());
    }

    #[test]
    fn heap_bytes_positive_and_linear() {
        let (g, _) = figure3_graph();
        assert!(g.heap_bytes() > 0);
    }
}

//! Serving-side overlay views: a mutable per-leaf delta composed over an
//! immutable snapshot at query time (ROADMAP item 4, the NRT onboarding
//! story).
//!
//! A snapshot is immutable by design — that is what makes zero-copy mmap
//! residency and atomic hot swaps safe. But a brand-new item (or a fresh
//! keyphrase for an existing leaf) then only becomes servable after the
//! next delta build publishes, which is minutes-cadence at best. The
//! overlay closes that gap by *inverting* the delta-borrow proof: just as
//! [`LeafAssembly::from_model`] reconstructs a leaf's assembly exactly
//! from a snapshot, an [`OverlayView`] reconstructs the records of every
//! overlaid leaf from the base model, unions them with the upserted delta
//! records, and re-assembles a small leaf-local graph through the **same**
//! [`canonicalize`] → [`LeafAssembly::build`] path the build pipeline
//! uses. Reads on an overlaid leaf traverse that mini graph (same count
//! arrays, same ranking, same scratch reuse); reads on untouched leaves
//! never pay a thing.
//!
//! Determinism is inherited, not re-proven: because the upserted records
//! are raw [`KeyphraseRecord`]s that later enter the build pipeline as
//! one more record source, *overlay-then-compact* is byte-identical to a
//! direct rebuild of the union corpus — the pipeline's existing
//! parallel ≡ sequential ≡ delta property does the work (pinned in
//! `tests/overlay.rs`).
//!
//! A view is immutable and cheap to share (`Arc` swap per upsert batch in
//! `graphex_serving::overlay::OverlayStore`); each upsert rebuilds only
//! the affected leaf's mini graph.

use crate::alignment::Alignment;
use crate::assembly::{canonicalize, AssemblyContext, LeafAssembly};
use crate::inference::{collect_title_tokens, infer_on_graph, Scratch};
use crate::model::GraphExModel;
use crate::service::{InferRequest, InferResponse, Outcome};
use crate::types::{KeyphraseId, KeyphraseRecord, LeafId};
use graphex_textkit::{FxHashMap, Tokenizer};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One overlaid leaf: the union of the base leaf's reconstructed records
/// and its uncompacted delta records, assembled into a leaf-local graph.
#[derive(Debug)]
struct OverlayLeaf {
    assembly: LeafAssembly,
    /// Local label index → global keyphrase id: the base model's id when
    /// the phrase already exists there, else a synthetic id past the base
    /// vocabulary (stable within one view).
    global_ids: Vec<KeyphraseId>,
    /// Uncompacted delta records folded into this leaf.
    delta_records: usize,
    /// True when the base snapshot has no graph for this leaf at all —
    /// the seconds-old-seller case.
    brand_new: bool,
}

/// Per-leaf overlay accounting, for `/statusz` tables and CLI output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlayLeafStats {
    pub leaf: LeafId,
    /// Uncompacted delta records folded into this leaf's mini graph.
    pub delta_records: usize,
    /// Total labels in the composed mini graph (base + delta).
    pub labels: u32,
    /// Whether the leaf exists only in the overlay (not in the base).
    pub brand_new: bool,
}

/// An immutable snapshot of the overlay: per-leaf mini graphs composed
/// from the base model plus all uncompacted delta records.
///
/// Built by `graphex_serving::overlay::OverlayStore` after each accepted
/// upsert batch and swapped in atomically (readers hold an `Arc`); the
/// inference path consults it before the base CSR lookup — an overlaid
/// leaf answers from its composed mini graph, everything else falls
/// through to the base model untouched.
#[derive(Debug)]
pub struct OverlayView {
    leaves: FxHashMap<LeafId, Arc<OverlayLeaf>>,
    tokenizer: Tokenizer,
    alignment: Alignment,
    /// Global overlay sequence number this view was built at (the epoch
    /// tag the KV store compares against for invalidation).
    seq: u64,
}

impl OverlayView {
    /// The empty view: covers no leaves, sequence 0.
    pub fn empty() -> Self {
        Self {
            leaves: FxHashMap::default(),
            tokenizer: GraphExModel::make_tokenizer(true),
            alignment: Alignment::Lta,
            seq: 0,
        }
    }

    /// Composes a view over `base` from per-leaf delta records.
    ///
    /// Every overlaid leaf's mini graph is a pure function of the base
    /// model and the delta record multiset: base records are
    /// reconstructed from the snapshot (normalized text + counts per
    /// label), unioned with the deltas, canonical-sorted, and assembled
    /// with [`LeafAssembly::build`] — whose normalized-text merge (sum
    /// search, max recall) mirrors what curation + assembly will do to
    /// the same records at compaction time.
    pub fn build(base: &GraphExModel, deltas: &BTreeMap<LeafId, Vec<KeyphraseRecord>>, seq: u64) -> Self {
        let mut ctx = AssemblyContext::new(base.stemming());
        let mut leaves = FxHashMap::default();
        for (&leaf, delta) in deltas {
            if delta.is_empty() {
                continue;
            }
            leaves.insert(leaf, Arc::new(Self::build_leaf(base, leaf, delta, &mut ctx)));
        }
        Self {
            leaves,
            tokenizer: GraphExModel::make_tokenizer(base.stemming()),
            alignment: base.alignment(),
            seq,
        }
    }

    /// Rebuilds only `leaf` against `base`, sharing every other leaf's
    /// mini graph with `self` — the incremental per-upsert path.
    pub fn with_leaf(
        &self,
        base: &GraphExModel,
        leaf: LeafId,
        delta: &[KeyphraseRecord],
        seq: u64,
    ) -> Self {
        let mut ctx = AssemblyContext::new(base.stemming());
        let mut leaves = self.leaves.clone();
        if delta.is_empty() {
            leaves.remove(&leaf);
        } else {
            leaves.insert(leaf, Arc::new(Self::build_leaf(base, leaf, delta, &mut ctx)));
        }
        Self {
            leaves,
            tokenizer: GraphExModel::make_tokenizer(base.stemming()),
            alignment: base.alignment(),
            seq,
        }
    }

    fn build_leaf(
        base: &GraphExModel,
        leaf: LeafId,
        delta: &[KeyphraseRecord],
        ctx: &mut AssemblyContext,
    ) -> OverlayLeaf {
        let base_graph = base.leaf_graph(leaf);
        let mut records: Vec<KeyphraseRecord> = Vec::with_capacity(
            delta.len() + base_graph.map_or(0, |g| g.num_labels() as usize),
        );
        if let Some(graph) = base_graph {
            for label in 0..graph.num_labels() {
                let text = base
                    .keyphrase_text(graph.keyphrase_id(label))
                    .expect("base leaf label resolves in base vocabulary");
                records.push(KeyphraseRecord::new(
                    text,
                    leaf,
                    graph.search_count(label),
                    graph.recall_count(label),
                ));
            }
        }
        records.extend(delta.iter().cloned());
        canonicalize(&mut records);
        let assembly = LeafAssembly::build(&records, ctx);

        // Local label → global id: reuse the base id for phrases the base
        // vocabulary already knows; mint synthetic ids past it otherwise.
        let mut next_synthetic = base.num_keyphrases() as u32;
        let global_ids = assembly
            .graph()
            .labels()
            .iter()
            .map(|&local| {
                let text = assembly
                    .keyphrases()
                    .resolve(local)
                    .expect("overlay label resolves in its local vocabulary");
                base.keyphrase_id(text).unwrap_or_else(|| {
                    let id = next_synthetic;
                    next_synthetic += 1;
                    id
                })
            })
            .collect();

        OverlayLeaf {
            assembly,
            global_ids,
            delta_records: delta.len(),
            brand_new: base_graph.is_none(),
        }
    }

    /// Global overlay sequence this view was built at.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Whether `leaf` answers from the overlay.
    pub fn covers(&self, leaf: LeafId) -> bool {
        self.leaves.contains_key(&leaf)
    }

    /// Number of overlaid leaves.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Total uncompacted delta records across all leaves.
    pub fn num_records(&self) -> usize {
        self.leaves.values().map(|l| l.delta_records).sum()
    }

    /// True when no leaf is overlaid.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Per-leaf accounting, sorted by leaf id (deterministic output for
    /// `/statusz` and the CLI).
    pub fn leaf_stats(&self) -> Vec<OverlayLeafStats> {
        let mut stats: Vec<OverlayLeafStats> = self
            .leaves
            .iter()
            .map(|(&leaf, ov)| OverlayLeafStats {
                leaf,
                delta_records: ov.delta_records,
                labels: ov.assembly.num_labels(),
                brand_new: ov.brand_new,
            })
            .collect();
        stats.sort_unstable_by_key(|s| s.leaf);
        stats
    }

    /// Answers `request` from the overlay, or `None` when the leaf is not
    /// overlaid (the caller then falls through to the base model).
    ///
    /// Same machinery as the base path: `collect_title_tokens` against
    /// the leaf-local vocabulary, then the generation-stamped count-array
    /// enumeration and ranking of `infer_on_graph` — reusing the caller's
    /// [`Scratch`], so steady-state overlay reads allocate nothing extra.
    pub fn infer_request(
        &self,
        request: &InferRequest<'_>,
        scratch: &mut Scratch,
    ) -> Option<InferResponse> {
        let ov = self.leaves.get(&request.leaf)?;
        collect_title_tokens(&self.tokenizer, ov.assembly.tokens(), request.title, scratch);
        let alignment = request.alignment.unwrap_or(self.alignment);
        let mut predictions =
            infer_on_graph(ov.assembly.graph(), alignment, &request.params(), scratch);
        let texts = if request.resolve_texts {
            predictions
                .iter()
                .map(|p| {
                    ov.assembly.keyphrases().resolve(p.keyphrase).unwrap_or_default().to_string()
                })
                .collect()
        } else {
            Vec::new()
        };
        for p in &mut predictions {
            p.keyphrase = ov.global_ids[p.keyphrase as usize];
        }
        let outcome = if predictions.is_empty() { Outcome::Empty } else { Outcome::ExactLeaf };
        Some(InferResponse { id: request.id, outcome, predictions, texts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphExBuilder, GraphExConfig};
    use crate::service::Engine;

    fn base_model() -> GraphExModel {
        let leaf = LeafId(7);
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        GraphExBuilder::new(config)
            .add_records(vec![
                KeyphraseRecord::new("audeze maxwell", leaf, 900, 120),
                KeyphraseRecord::new("audeze headphones", leaf, 450, 300),
                KeyphraseRecord::new("gaming headphones xbox", leaf, 800, 700),
            ])
            .build()
            .unwrap()
    }

    fn deltas(pairs: Vec<(u32, KeyphraseRecord)>) -> BTreeMap<LeafId, Vec<KeyphraseRecord>> {
        let mut map: BTreeMap<LeafId, Vec<KeyphraseRecord>> = BTreeMap::new();
        for (leaf, rec) in pairs {
            map.entry(LeafId(leaf)).or_default().push(rec);
        }
        map
    }

    #[test]
    fn uncovered_leaf_falls_through() {
        let base = base_model();
        let view = OverlayView::build(
            &base,
            &deltas(vec![(9, KeyphraseRecord::new("ski goggles", LeafId(9), 50, 5))]),
            1,
        );
        let mut scratch = Scratch::new();
        assert!(view
            .infer_request(&InferRequest::new("audeze maxwell", LeafId(7)), &mut scratch)
            .is_none());
        assert!(view.covers(LeafId(9)));
        assert!(!view.covers(LeafId(7)));
    }

    #[test]
    fn brand_new_leaf_is_servable() {
        let base = base_model();
        let view = OverlayView::build(
            &base,
            &deltas(vec![
                (9, KeyphraseRecord::new("ski goggles anti fog", LeafId(9), 50, 5)),
                (9, KeyphraseRecord::new("ski goggles", LeafId(9), 80, 9)),
            ]),
            2,
        );
        let mut scratch = Scratch::new();
        let resp = view
            .infer_request(
                &InferRequest::new("anti fog ski goggles large", LeafId(9)).k(5).resolve_texts(true),
                &mut scratch,
            )
            .unwrap();
        assert_eq!(resp.outcome, Outcome::ExactLeaf);
        assert_eq!(resp.texts[0], "ski goggles anti fog");
        let stats = view.leaf_stats();
        assert_eq!(stats.len(), 1);
        assert!(stats[0].brand_new);
        assert_eq!(stats[0].delta_records, 2);
    }

    #[test]
    fn overlaid_leaf_composes_base_and_delta() {
        let base = base_model();
        // A new keyphrase lands on the existing leaf; base phrases must
        // still answer alongside it.
        let view = OverlayView::build(
            &base,
            &deltas(vec![(7, KeyphraseRecord::new("audeze maxwell xbox edition", LeafId(7), 990, 10))]),
            3,
        );
        let mut scratch = Scratch::new();
        let resp = view
            .infer_request(
                &InferRequest::new("audeze maxwell gaming headphones xbox", LeafId(7))
                    .k(10)
                    .resolve_texts(true),
                &mut scratch,
            )
            .unwrap();
        assert_eq!(resp.outcome, Outcome::ExactLeaf);
        assert!(resp.texts.iter().any(|t| t == "audeze maxwell xbox edition"));
        assert!(resp.texts.iter().any(|t| t == "gaming headphones xbox"));
        // Existing phrases keep their base-model global ids.
        let kp = base.keyphrase_id("gaming headphones xbox").unwrap();
        let idx = resp.texts.iter().position(|t| t == "gaming headphones xbox").unwrap();
        assert_eq!(resp.predictions[idx].keyphrase, kp);
        // The new phrase gets a synthetic id past the base vocabulary.
        let new_idx = resp.texts.iter().position(|t| t == "audeze maxwell xbox edition").unwrap();
        assert!(resp.predictions[new_idx].keyphrase >= base.num_keyphrases() as u32);
    }

    #[test]
    fn weight_bump_merges_counts_like_compaction() {
        let base = base_model();
        // Bumping an existing phrase sums search counts (curation's
        // commutative duplicate merge), so overlay scores match what the
        // compacted snapshot will serve.
        let view = OverlayView::build(
            &base,
            &deltas(vec![(7, KeyphraseRecord::new("audeze headphones", LeafId(7), 1000, 100))]),
            4,
        );
        let mut scratch = Scratch::new();
        let resp = view
            .infer_request(
                &InferRequest::new("audeze maxwell headphones", LeafId(7)).k(5).resolve_texts(true),
                &mut scratch,
            )
            .unwrap();
        let idx = resp.texts.iter().position(|t| t == "audeze headphones").unwrap();
        assert_eq!(resp.predictions[idx].search_count, 450 + 1000);
        assert_eq!(resp.predictions[idx].recall_count, 300);
        // The bumped phrase now out-ties "audeze maxwell" (LTA 2/1 both,
        // search 1450 vs 900).
        assert_eq!(resp.texts[0], "audeze headphones");
    }

    #[test]
    fn overlay_answer_matches_direct_rebuild_of_union() {
        // The read-path fidelity check behind the compaction invariant:
        // serving through the overlay answers the same texts as a model
        // rebuilt from the union corpus.
        let union_records = vec![
            KeyphraseRecord::new("audeze maxwell", LeafId(7), 900, 120),
            KeyphraseRecord::new("audeze headphones", LeafId(7), 450, 300),
            KeyphraseRecord::new("gaming headphones xbox", LeafId(7), 800, 700),
            KeyphraseRecord::new("audeze maxwell xbox edition", LeafId(7), 990, 10),
        ];
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        let rebuilt = GraphExBuilder::new(config).add_records(union_records).build().unwrap();

        let base = base_model();
        let view = OverlayView::build(
            &base,
            &deltas(vec![(7, KeyphraseRecord::new("audeze maxwell xbox edition", LeafId(7), 990, 10))]),
            5,
        );
        let req = InferRequest::new("audeze maxwell gaming headphones xbox edition", LeafId(7))
            .k(10)
            .resolve_texts(true);
        let mut scratch = Scratch::new();
        let via_overlay = view.infer_request(&req, &mut scratch).unwrap();
        let direct = Engine::from_model(rebuilt).infer(&req);
        assert_eq!(via_overlay.texts, direct.texts);
        assert_eq!(via_overlay.outcome, direct.outcome);
    }

    #[test]
    fn with_leaf_rebuilds_one_leaf_and_shares_the_rest() {
        let base = base_model();
        let view = OverlayView::build(
            &base,
            &deltas(vec![(9, KeyphraseRecord::new("ski goggles", LeafId(9), 80, 9))]),
            1,
        );
        let next = view.with_leaf(
            &base,
            LeafId(10),
            &[KeyphraseRecord::new("snow helmet", LeafId(10), 40, 4)],
            2,
        );
        assert_eq!(next.seq(), 2);
        assert!(next.covers(LeafId(9)) && next.covers(LeafId(10)));
        assert_eq!(next.num_leaves(), 2);
        // Draining a leaf removes it.
        let drained = next.with_leaf(&base, LeafId(9), &[], 3);
        assert!(!drained.covers(LeafId(9)) && drained.covers(LeafId(10)));
    }

    #[test]
    fn empty_view_covers_nothing() {
        let view = OverlayView::empty();
        assert!(view.is_empty());
        assert_eq!(view.seq(), 0);
        assert_eq!(view.num_records(), 0);
        let mut scratch = Scratch::new();
        assert!(view.infer_request(&InferRequest::new("x", LeafId(1)), &mut scratch).is_none());
    }
}

//! The request/response inference API: typed envelopes, pooled sessions,
//! and the [`KeyphraseService`] seam every frontend plugs into.
//!
//! The paper's production dataflow (Sec. IV-H, Fig. 7) exposes *one*
//! inference API behind NuKV; this module is that seam for the
//! reproduction. A caller builds an [`InferRequest`] (title + leaf plus
//! per-request overrides), hands it to anything implementing
//! [`KeyphraseService`], and gets back an [`InferResponse`] whose
//! [`Outcome`] says *why* the answer is what it is — exact-leaf hit,
//! meta-graph fallback, unknown leaf, or an empty candidate set — instead
//! of every layer collapsing errors into `Vec::new()`.
//!
//! Two services live here:
//!
//! * [`Engine`] — a cheap-to-clone handle over `Arc<GraphExModel>` with a
//!   [`ScratchPool`], so `&self` callers get zero-allocation steady-state
//!   inference without owning a [`Scratch`]. [`Engine::session`] checks a
//!   scratch out for a run of calls; [`Engine::infer_batch`] fans a request
//!   slice across threads with *per-request* parameters.
//! * `graphex-serving`'s `ServingApi` — the store-backed implementation
//!   (KV hit, else read-through), sharing this exact interface.

use crate::alignment::Alignment;
use crate::inference::{InferenceParams, Prediction, Scratch};
use crate::model::GraphExModel;
use crate::types::LeafId;
use std::sync::{Arc, Mutex, PoisonError};

/// Why an [`InferResponse`] contains what it contains.
///
/// This is the provenance the serving stack exposes to operators (counter
/// labels) and to callers deciding whether to fall back to another
/// recommendation source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The leaf category has a dedicated graph and it produced predictions.
    ExactLeaf,
    /// The leaf was unknown; the meta-category fallback graph answered.
    MetaFallback,
    /// The leaf was unknown and no fallback graph was built: the model
    /// cannot serve this request (predictions are empty).
    UnknownLeaf,
    /// A graph was consulted (exact or fallback) but no candidate keyphrase
    /// shared a word with the title.
    Empty,
}

impl Outcome {
    /// All variants, for counter registries and exhaustive sweeps.
    pub const ALL: [Outcome; 4] =
        [Outcome::ExactLeaf, Outcome::MetaFallback, Outcome::UnknownLeaf, Outcome::Empty];

    /// Stable snake_case label (counter/metric key).
    pub fn name(self) -> &'static str {
        match self {
            Outcome::ExactLeaf => "exact_leaf",
            Outcome::MetaFallback => "meta_fallback",
            Outcome::UnknownLeaf => "unknown_leaf",
            Outcome::Empty => "empty",
        }
    }

    /// Dense index (for counter arrays); inverse of `ALL[i]`.
    pub fn index(self) -> usize {
        match self {
            Outcome::ExactLeaf => 0,
            Outcome::MetaFallback => 1,
            Outcome::UnknownLeaf => 2,
            Outcome::Empty => 3,
        }
    }

    /// Whether the response carries predictions a caller can serve.
    pub fn is_servable(self) -> bool {
        matches!(self, Outcome::ExactLeaf | Outcome::MetaFallback)
    }
}

/// Per-[`Outcome`] tallies, used by batch reports and serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    pub exact_leaf: u64,
    pub meta_fallback: u64,
    pub unknown_leaf: u64,
    pub empty: u64,
}

impl OutcomeCounts {
    /// Records one response outcome.
    pub fn record(&mut self, outcome: Outcome) {
        *self.slot(outcome) += 1;
    }

    /// The tally for one outcome.
    pub fn of(&self, outcome: Outcome) -> u64 {
        match outcome {
            Outcome::ExactLeaf => self.exact_leaf,
            Outcome::MetaFallback => self.meta_fallback,
            Outcome::UnknownLeaf => self.unknown_leaf,
            Outcome::Empty => self.empty,
        }
    }

    /// Sum over all outcomes.
    pub fn total(&self) -> u64 {
        Outcome::ALL.iter().map(|&o| self.of(o)).sum()
    }

    fn slot(&mut self, outcome: Outcome) -> &mut u64 {
        match outcome {
            Outcome::ExactLeaf => &mut self.exact_leaf,
            Outcome::MetaFallback => &mut self.meta_fallback,
            Outcome::UnknownLeaf => &mut self.unknown_leaf,
            Outcome::Empty => &mut self.empty,
        }
    }
}

/// One inference request: the title/leaf pair plus everything a caller may
/// override per request.
///
/// Build with [`InferRequest::new`] and chain the builder methods; every
/// knob has a production default (`k = 20`, model-default alignment, strict
/// truncation, no id, ids-only predictions).
///
/// ```
/// use graphex_core::{Alignment, InferRequest, LeafId};
///
/// let req = InferRequest::new("audeze maxwell gaming headphones", LeafId(7))
///     .k(10)                      // per-request budget
///     .alignment(Alignment::Jac)  // override the model's ranking function
///     .keep_threshold_group(true) // paper pruning semantics: keep ties
///     .id(42)                     // correlate with the response / KV key
///     .resolve_texts(true);       // materialize keyphrase strings
/// assert_eq!(req.k, 10);
/// assert_eq!(req.id, Some(42));
/// assert_eq!(req.params().alignment, Some(Alignment::Jac));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct InferRequest<'a> {
    /// Item title (raw; the model tokenizes/normalizes internally).
    pub title: &'a str,
    /// Leaf category the item is listed in.
    pub leaf: LeafId,
    /// Requested number of predictions.
    pub k: usize,
    /// Ranking alignment override; `None` uses the model default.
    pub alignment: Option<Alignment>,
    /// Keep the whole threshold count-group even when it exceeds `k`.
    pub keep_threshold_group: bool,
    /// Caller-chosen id, echoed on the response. Store-backed services use
    /// it as the item key; requests without an id bypass the store.
    pub id: Option<u64>,
    /// Resolve predictions to keyphrase strings in
    /// [`InferResponse::texts`] (parallel to `predictions`).
    pub resolve_texts: bool,
}

impl<'a> InferRequest<'a> {
    /// A request with production defaults (`k = 20`, model alignment).
    pub fn new(title: &'a str, leaf: LeafId) -> Self {
        Self {
            title,
            leaf,
            k: InferenceParams::default().k,
            alignment: None,
            keep_threshold_group: false,
            id: None,
            resolve_texts: false,
        }
    }

    /// Sets the per-request prediction budget.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Overrides the ranking alignment for this request only.
    pub fn alignment(mut self, alignment: Alignment) -> Self {
        self.alignment = Some(alignment);
        self
    }

    /// Keeps the whole threshold count-group (paper pruning semantics).
    pub fn keep_threshold_group(mut self, keep: bool) -> Self {
        self.keep_threshold_group = keep;
        self
    }

    /// Attaches a request/item id, echoed on the response.
    pub fn id(mut self, id: u64) -> Self {
        self.id = Some(id);
        self
    }

    /// Asks the service to resolve keyphrase texts into the response.
    pub fn resolve_texts(mut self, resolve: bool) -> Self {
        self.resolve_texts = resolve;
        self
    }

    /// The low-level [`InferenceParams`] this envelope encodes.
    pub fn params(&self) -> InferenceParams {
        InferenceParams {
            k: self.k,
            alignment: self.alignment,
            keep_threshold_group: self.keep_threshold_group,
        }
    }
}

/// A typed inference response: predictions plus the [`Outcome`] that
/// explains them.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResponse {
    /// Echo of [`InferRequest::id`].
    pub id: Option<u64>,
    /// Why the predictions are what they are.
    pub outcome: Outcome,
    /// Ranked predictions, best first. Empty for `UnknownLeaf`/`Empty`.
    /// Store-backed services may serve texts without prediction attributes
    /// (see [`InferResponse::texts`]).
    pub predictions: Vec<Prediction>,
    /// Resolved keyphrase strings, parallel to `predictions`, filled when
    /// the request set [`InferRequest::resolve_texts`] (or the response was
    /// served from a KV store, which holds texts only).
    pub texts: Vec<String>,
}

impl InferResponse {
    /// A response with no predictions (unknown leaf or empty candidates).
    pub fn empty(id: Option<u64>, outcome: Outcome) -> Self {
        Self { id, outcome, predictions: Vec::new(), texts: Vec::new() }
    }

    /// Number of served keyphrases (predictions, or texts when the service
    /// returned strings only).
    pub fn len(&self) -> usize {
        self.predictions.len().max(self.texts.len())
    }

    /// True when nothing was served.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the outcome carries servable recommendations.
    pub fn is_servable(&self) -> bool {
        self.outcome.is_servable()
    }
}

/// The one interface every inference frontend speaks (Fig. 7's "inference
/// API" box).
///
/// Implemented by the raw [`Engine`] (pure model inference) and by
/// `graphex-serving`'s store-backed `ServingApi` (KV hit, else
/// read-through), so batch jobs, the CLI, the evaluation harness, and any
/// future async frontend are written once against this trait.
pub trait KeyphraseService: Send + Sync {
    /// Answers one request.
    fn infer(&self, request: &InferRequest<'_>) -> InferResponse;

    /// Answers a slice of requests, in order. The default loops over
    /// [`KeyphraseService::infer`]; implementations override it to batch
    /// (the [`Engine`] fans out across threads).
    fn infer_batch(&self, requests: &[InferRequest<'_>]) -> Vec<InferResponse> {
        requests.iter().map(|r| self.infer(r)).collect()
    }
}

/// Reusable pool of [`Scratch`] workspaces for `&self` inference surfaces.
///
/// The mutex guards only the push/pop, never an inference, so contention is
/// negligible next to graph-walk work. Bounded so a burst of concurrent
/// callers cannot pin unbounded scratch memory.
#[derive(Debug, Default)]
pub struct ScratchPool {
    pool: Mutex<Vec<Scratch>>,
}

/// Retained scratches cap; extras returned past this are dropped.
const SCRATCH_POOL_CAP: usize = 64;

impl ScratchPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pops a pooled scratch, or allocates a fresh one.
    pub fn take(&self) -> Scratch {
        self.lock().pop().unwrap_or_default()
    }

    /// Returns a scratch to the pool (dropped if the pool is full).
    pub fn give(&self, scratch: Scratch) {
        let mut pool = self.lock();
        if pool.len() < SCRATCH_POOL_CAP {
            pool.push(scratch);
        }
    }

    /// Currently pooled (idle) scratches.
    pub fn idle(&self) -> usize {
        self.lock().len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Scratch>> {
        self.pool.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Shared, cheap-to-clone inference handle: `Arc<GraphExModel>` plus a
/// [`ScratchPool`].
///
/// This is the in-process [`KeyphraseService`]: no store, no counters, just
/// pooled zero-allocation inference. Clone it freely across threads; all
/// clones share the model and the pool.
#[derive(Debug, Clone)]
pub struct Engine {
    model: Arc<GraphExModel>,
    pool: Arc<ScratchPool>,
}

impl Engine {
    /// Engine over an already-shared model.
    pub fn new(model: Arc<GraphExModel>) -> Self {
        Self { model, pool: Arc::new(ScratchPool::new()) }
    }

    /// Engine that takes ownership of a freshly built model.
    pub fn from_model(model: GraphExModel) -> Self {
        Self::new(Arc::new(model))
    }

    /// The underlying model.
    pub fn model(&self) -> &GraphExModel {
        &self.model
    }

    /// The shared model handle (for wiring other services to it).
    pub fn shared_model(&self) -> Arc<GraphExModel> {
        Arc::clone(&self.model)
    }

    /// The engine's scratch pool (shared with all clones).
    pub fn scratch_pool(&self) -> &ScratchPool {
        &self.pool
    }

    /// Checks a scratch out of the pool for a run of calls; the scratch
    /// returns to the pool when the [`Session`] drops.
    pub fn session(&self) -> Session<'_> {
        Session { engine: self, scratch: Some(self.pool.take()) }
    }

    /// One-shot inference through a pooled session.
    pub fn infer(&self, request: &InferRequest<'_>) -> InferResponse {
        self.session().infer(request)
    }

    /// One-shot inference composed with an overlay view: an overlaid leaf
    /// answers from its composed mini graph, everything else falls
    /// through to the base model. Same pooled scratch either way.
    pub fn infer_with_overlay(
        &self,
        request: &InferRequest<'_>,
        overlay: Option<&crate::overlay::OverlayView>,
    ) -> InferResponse {
        self.session().infer_with_overlay(request, overlay)
    }

    /// [`Engine::infer_with_overlay`] with stage spans recorded into
    /// `trace` (traversal/ranking split, overlay consult attribution).
    /// With a disabled trace this is the plain untraced path.
    pub fn infer_traced(
        &self,
        request: &InferRequest<'_>,
        overlay: Option<&crate::overlay::OverlayView>,
        trace: &mut crate::trace::StageTrace,
    ) -> InferResponse {
        self.session().infer_traced(request, overlay, trace)
    }

    /// Answers every request, in order, using up to `threads` workers
    /// (`0` = all cores). Each request carries its own `k`/alignment; each
    /// worker checks one scratch out of the engine's pool, so repeated
    /// batches reuse warm buffers.
    ///
    /// Equivalent to sequential [`Engine::infer`] per request (pinned by a
    /// property test in `crates/core/tests/service_props.rs`).
    pub fn infer_batch(&self, requests: &[InferRequest<'_>], threads: usize) -> Vec<InferResponse> {
        crate::parallel::batch_infer_pooled(&self.model, requests, threads, &self.pool)
    }
}

impl KeyphraseService for Engine {
    fn infer(&self, request: &InferRequest<'_>) -> InferResponse {
        Engine::infer(self, request)
    }

    fn infer_batch(&self, requests: &[InferRequest<'_>]) -> Vec<InferResponse> {
        Engine::infer_batch(self, requests, 0)
    }
}

/// A pooled-scratch inference session (see [`Engine::session`]).
///
/// Holds one [`Scratch`] for its lifetime, so a loop of `infer` calls does
/// zero allocation at steady state and touches the pool lock only twice
/// (checkout + return on drop).
#[derive(Debug)]
pub struct Session<'e> {
    engine: &'e Engine,
    scratch: Option<Scratch>,
}

impl Session<'_> {
    /// Answers one request with this session's scratch.
    pub fn infer(&mut self, request: &InferRequest<'_>) -> InferResponse {
        let scratch = self.scratch.as_mut().expect("scratch present until drop");
        self.engine.model.infer_request(request, scratch)
    }

    /// [`Session::infer`] composed with an overlay view (see
    /// [`Engine::infer_with_overlay`]).
    pub fn infer_with_overlay(
        &mut self,
        request: &InferRequest<'_>,
        overlay: Option<&crate::overlay::OverlayView>,
    ) -> InferResponse {
        let scratch = self.scratch.as_mut().expect("scratch present until drop");
        if let Some(view) = overlay {
            if let Some(response) = view.infer_request(request, scratch) {
                return response;
            }
        }
        self.engine.model.infer_request(request, scratch)
    }

    /// [`Session::infer_with_overlay`] recording stage spans into `trace`.
    ///
    /// The caller's trace is swapped into the pooled scratch for the call,
    /// so the inference internals record into it without any extra
    /// plumbing, then swapped back out — zero allocation either way. An
    /// overlay consult that answers the request is reported as a single
    /// [`crate::trace::Stage::OverlayConsult`] span (detail = leaf id);
    /// the mini graph's nested traversal/ranking spans are suppressed so
    /// top-level spans never overlap.
    pub fn infer_traced(
        &mut self,
        request: &InferRequest<'_>,
        overlay: Option<&crate::overlay::OverlayView>,
        trace: &mut crate::trace::StageTrace,
    ) -> InferResponse {
        let scratch = self.scratch.as_mut().expect("scratch present until drop");
        std::mem::swap(&mut scratch.trace, trace);
        let mut answered = None;
        if let Some(view) = overlay {
            let start = scratch.trace.clock();
            let saved = scratch.trace.suspend();
            let consulted = view.infer_request(request, scratch);
            scratch.trace.resume(saved);
            if consulted.is_some() {
                scratch.trace.record_detail(
                    crate::trace::Stage::OverlayConsult,
                    start,
                    u64::from(request.leaf.0),
                );
                answered = consulted;
            }
        }
        let response = match answered {
            Some(response) => response,
            None => self.engine.model.infer_request(request, scratch),
        };
        std::mem::swap(&mut scratch.trace, trace);
        response
    }

    /// The engine this session belongs to.
    pub fn engine(&self) -> &Engine {
        self.engine
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.engine.pool.give(scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphExBuilder, GraphExConfig};
    use crate::types::KeyphraseRecord;

    fn model(fallback: bool) -> GraphExModel {
        let leaf = LeafId(7);
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        config.build_meta_fallback = fallback;
        GraphExBuilder::new(config)
            .add_records(vec![
                KeyphraseRecord::new("audeze maxwell", leaf, 900, 120),
                KeyphraseRecord::new("audeze headphones", leaf, 450, 300),
                KeyphraseRecord::new("gaming headphones xbox", leaf, 800, 700),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn engine_infer_matches_model_infer_request() {
        let engine = Engine::from_model(model(false));
        let req = InferRequest::new("audeze maxwell gaming headphones xbox", LeafId(7))
            .k(5)
            .resolve_texts(true);
        let via_engine = engine.infer(&req);
        let mut scratch = Scratch::new();
        let direct = engine.model().infer_request(&req, &mut scratch);
        assert_eq!(via_engine, direct);
        assert_eq!(via_engine.outcome, Outcome::ExactLeaf);
        assert_eq!(via_engine.texts.len(), via_engine.predictions.len());
        assert_eq!(via_engine.texts[0], "gaming headphones xbox");
    }

    #[test]
    fn session_reuses_one_scratch_and_returns_it() {
        let engine = Engine::from_model(model(false));
        {
            let mut session = engine.session();
            let req = InferRequest::new("audeze maxwell", LeafId(7)).k(3);
            let first = session.infer(&req);
            for _ in 0..5 {
                assert_eq!(session.infer(&req), first);
            }
            assert_eq!(session.engine().scratch_pool().idle(), 0);
        }
        assert_eq!(engine.scratch_pool().idle(), 1);
        // The next session reuses the pooled scratch instead of allocating.
        drop(engine.session());
        assert_eq!(engine.scratch_pool().idle(), 1);
    }

    #[test]
    fn scratch_pool_is_bounded() {
        let pool = ScratchPool::new();
        for _ in 0..100 {
            pool.give(Scratch::new());
        }
        assert_eq!(pool.idle(), SCRATCH_POOL_CAP);
        let _ = pool.take();
        assert_eq!(pool.idle(), SCRATCH_POOL_CAP - 1);
    }

    #[test]
    fn outcome_provenance_is_exhaustive() {
        // Exact leaf with matches → ExactLeaf.
        let with_fb = Engine::from_model(model(true));
        let exact = with_fb.infer(&InferRequest::new("audeze maxwell", LeafId(7)));
        assert_eq!(exact.outcome, Outcome::ExactLeaf);
        assert!(exact.is_servable());

        // Unknown leaf, fallback built → MetaFallback (still servable).
        let fb = with_fb.infer(&InferRequest::new("audeze maxwell", LeafId(999)));
        assert_eq!(fb.outcome, Outcome::MetaFallback);
        assert!(fb.is_servable());
        assert!(!fb.predictions.is_empty());

        // Unknown leaf, no fallback → UnknownLeaf, empty.
        let no_fb = Engine::from_model(model(false));
        let unknown = no_fb.infer(&InferRequest::new("audeze maxwell", LeafId(999)));
        assert_eq!(unknown.outcome, Outcome::UnknownLeaf);
        assert!(!unknown.is_servable());
        assert!(unknown.is_empty());

        // Known leaf, nothing matches → Empty.
        let empty = no_fb.infer(&InferRequest::new("zzz qqq", LeafId(7)));
        assert_eq!(empty.outcome, Outcome::Empty);
        assert!(!empty.is_servable());
        assert!(empty.is_empty());

        // Fallback consulted but nothing matches → also Empty.
        let fb_empty = with_fb.infer(&InferRequest::new("zzz qqq", LeafId(999)));
        assert_eq!(fb_empty.outcome, Outcome::Empty);

        // Every variant observed above; ALL and index() agree.
        for (i, o) in Outcome::ALL.into_iter().enumerate() {
            assert_eq!(o.index(), i);
            assert!(!o.name().is_empty());
        }
    }

    #[test]
    fn outcome_counts_tally() {
        let mut counts = OutcomeCounts::default();
        counts.record(Outcome::ExactLeaf);
        counts.record(Outcome::ExactLeaf);
        counts.record(Outcome::Empty);
        assert_eq!(counts.of(Outcome::ExactLeaf), 2);
        assert_eq!(counts.of(Outcome::Empty), 1);
        assert_eq!(counts.of(Outcome::UnknownLeaf), 0);
        assert_eq!(counts.total(), 3);
    }

    #[test]
    fn request_id_is_echoed() {
        let engine = Engine::from_model(model(false));
        let resp = engine.infer(&InferRequest::new("audeze maxwell", LeafId(7)).id(77));
        assert_eq!(resp.id, Some(77));
        let resp = engine.infer(&InferRequest::new("audeze maxwell", LeafId(7)));
        assert_eq!(resp.id, None);
    }

    #[test]
    fn trait_object_dispatch() {
        let engine = Engine::from_model(model(true));
        let service: &dyn KeyphraseService = &engine;
        let reqs = [
            InferRequest::new("audeze maxwell", LeafId(7)).k(2),
            InferRequest::new("gaming headphones xbox", LeafId(999)).k(1),
        ];
        let responses = service.infer_batch(&reqs);
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].outcome, Outcome::ExactLeaf);
        assert_eq!(responses[1].outcome, Outcome::MetaFallback);
        assert_eq!(responses[1].predictions.len(), 1);
    }
}

//! Error type for model construction, serialization and I/O.

use crate::types::LeafId;

/// Errors surfaced by the GraphEx public API.
#[derive(Debug)]
pub enum GraphExError {
    /// Underlying I/O failure while reading/writing a model file.
    Io(std::io::Error),
    /// The byte stream is not a GraphEx model or is truncated/corrupt.
    /// The payload describes which structural check failed.
    Corrupt(String),
    /// The model file has a format version this build cannot read.
    UnsupportedVersion(u32),
    /// No graph exists for the requested leaf category and no fallback
    /// graph was built (see [`crate::GraphExConfig::build_meta_fallback`]).
    UnknownLeaf(LeafId),
    /// Construction was asked to build a model from zero curated keyphrases.
    EmptyModel,
}

impl std::fmt::Display for GraphExError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Corrupt(what) => write!(f, "corrupt model data: {what}"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported model format version {v}"),
            Self::UnknownLeaf(leaf) => write!(f, "no graph for {leaf} and no fallback configured"),
            Self::EmptyModel => write!(f, "no keyphrases survived curation; cannot build an empty model"),
        }
    }
}

impl std::error::Error for GraphExError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphExError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl GraphExError {
    /// Attaches the offending file path to an error produced while
    /// loading `path`, so "checksum mismatch" in a fleet of tenants
    /// names which snapshot is corrupt.
    ///
    /// The variant is preserved — `Io` keeps its [`std::io::ErrorKind`]
    /// and `Corrupt` stays `Corrupt` with the path prefixed into the
    /// message — so callers matching on variants (or error kinds) are
    /// unaffected. Variants that carry no message pass through
    /// unchanged.
    pub fn with_path(self, path: impl AsRef<std::path::Path>) -> Self {
        let path = path.as_ref().display();
        match self {
            Self::Io(e) => {
                let kind = e.kind();
                Self::Io(std::io::Error::new(kind, format!("{path}: {e}")))
            }
            Self::Corrupt(what) => Self::Corrupt(format!("{path}: {what}")),
            other => other,
        }
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphExError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(GraphExError::Corrupt("bad magic".into()).to_string().contains("bad magic"));
        assert!(GraphExError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(GraphExError::UnknownLeaf(LeafId(3)).to_string().contains("leaf#3"));
        assert!(GraphExError::EmptyModel.to_string().contains("curation"));
    }

    #[test]
    fn io_source_chain() {
        let e = GraphExError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(std::error::Error::source(&e).is_some());
    }
}

//! Alignment functions scoring a candidate keyphrase against a title.
//!
//! Given a title `T` and a label (keyphrase) `l`, with `c = |T ∩ l|` the
//! number of *distinct* label words also present in the title:
//!
//! * **LTA** (Label-Title Alignment, the paper's contribution, Sec. III-E1):
//!   `c / (|l| − c + 1)`. Penalizes label words *missing* from the title —
//!   a missing token is "risky" because it can change the product entirely.
//! * **WMR** (Word Match Ratio, used by Graphite): `c / |l|`.
//! * **JAC** (Jaccard coefficient): `c / (|l| + |T| − c)`.
//!
//! Sec. IV-F1's worked example: title with 10 tokens, labels "A B C" and
//! "A B C D E" — LTA ranks "A B C" first (3/1 > 4/2) while JAC prefers the
//! longer, riskier label (3/10 < 4/10). Table VI measures LTA ≥ JAC > WMR on
//! relevant proportion, which `crates/bench --bin table6` reproduces.
//!
//! Scores are compared *exactly* using cross-multiplication over `u64`, so
//! ranking is never subject to float rounding; `f64` values are only
//! materialized for reporting.

/// Which alignment function the ranking step uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Alignment {
    /// Label-Title Alignment `c / (|l| − c + 1)` — the paper's default.
    #[default]
    Lta,
    /// Word Match Ratio `c / |l|`.
    Wmr,
    /// Jaccard coefficient `c / (|l| + |T| − c)`.
    Jac,
}

impl Alignment {
    /// All variants, for ablation sweeps.
    pub const ALL: [Alignment; 3] = [Alignment::Lta, Alignment::Wmr, Alignment::Jac];

    /// Human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Alignment::Lta => "LTA",
            Alignment::Wmr => "WMR",
            Alignment::Jac => "JAC",
        }
    }

    /// Score as an `f64` for reporting. `c` = matched words, `label_len` =
    /// distinct words in the label, `title_len` = distinct words in the
    /// title (only used by JAC).
    pub fn score(self, c: u32, label_len: u32, title_len: u32) -> f64 {
        debug_assert!(c <= label_len, "matched count exceeds label length");
        if label_len == 0 {
            return 0.0;
        }
        let c = f64::from(c);
        match self {
            Alignment::Lta => c / (f64::from(label_len) - c + 1.0),
            Alignment::Wmr => c / f64::from(label_len),
            Alignment::Jac => c / (f64::from(label_len) + f64::from(title_len) - c),
        }
    }

    /// Exact comparison of two candidates' scores under this alignment,
    /// `Greater` meaning candidate 1 ranks higher.
    ///
    /// Uses cross-multiplication in `u64` (inputs are ≤ u16-sized in
    /// practice, so no overflow is possible: max 2^32 · 2^32 would overflow,
    /// but token counts are bounded by title/label lengths < 2^16).
    #[inline]
    pub fn cmp_scores(
        self,
        (c1, l1): (u32, u32),
        (c2, l2): (u32, u32),
        title_len: u32,
    ) -> std::cmp::Ordering {
        let (n1, d1) = self.as_fraction(c1, l1, title_len);
        let (n2, d2) = self.as_fraction(c2, l2, title_len);
        // a/b vs c/d  ⇔  a·d vs c·b  (denominators are ≥ 1)
        (u64::from(n1) * u64::from(d2)).cmp(&(u64::from(n2) * u64::from(d1)))
    }

    /// The score as an exact non-negative fraction `(numerator, denominator)`
    /// with denominator ≥ 1.
    #[inline]
    pub fn as_fraction(self, c: u32, label_len: u32, title_len: u32) -> (u32, u32) {
        match self {
            // |l| ≥ c always, so the denominator is ≥ 1.
            Alignment::Lta => (c, label_len - c + 1),
            Alignment::Wmr => (c, label_len.max(1)),
            Alignment::Jac => (c, (label_len + title_len - c).max(1)),
        }
    }
}

impl std::fmt::Display for Alignment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn paper_worked_example_figure3() {
        // Title: "audeze maxwell gaming headphones for xbox" (6 tokens).
        // "audeze maxwell": c=2, |l|=2 → LTA = 2/1.
        // "wireless headphones xbox": c=2, |l|=3 → LTA = 2/2.
        let lta = Alignment::Lta;
        assert_eq!(lta.score(2, 2, 6), 2.0);
        assert_eq!(lta.score(2, 3, 6), 1.0);
        assert_eq!(lta.cmp_scores((2, 2), (2, 3), 6), Ordering::Greater);
    }

    #[test]
    fn paper_worked_example_section_4f1() {
        // Title with 10 tokens; labels "A B C" (c=3,|l|=3) and
        // "A B C D E" (c=3,|l|=5).
        let t = 10;
        // LTA: 3/1 > 3/3 → shorter label wins.
        assert_eq!(Alignment::Lta.cmp_scores((3, 3), (3, 5), t), Ordering::Greater);
        // JAC: 3/10 < ... wait: paper compares c=3 vs c=4 when E also matches.
        // Fully-matched long label: c=5 → JAC = 5/10; "A B C" = 3/10: JAC
        // prefers the longer one even though token E is risky.
        assert_eq!(Alignment::Jac.cmp_scores((3, 3), (5, 5), t), Ordering::Less);
        // LTA still prefers complete short over complete long here? 3/1 vs
        // 5/1 → no, both fully matched: LTA prefers more coverage. The risk
        // penalty only applies to *unmatched* label tokens:
        assert_eq!(Alignment::Lta.cmp_scores((3, 3), (4, 5), t), Ordering::Greater); // 3/1 > 4/2
    }

    #[test]
    fn score_formulas() {
        assert!((Alignment::Wmr.score(2, 4, 9) - 0.5).abs() < 1e-12);
        assert!((Alignment::Jac.score(2, 4, 9) - 2.0 / 11.0).abs() < 1e-12);
        assert!((Alignment::Lta.score(2, 4, 9) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_match_and_zero_len() {
        for a in Alignment::ALL {
            assert_eq!(a.score(0, 0, 5), 0.0);
            let (n, _d) = a.as_fraction(0, 3, 5);
            assert_eq!(n, 0);
        }
    }

    #[test]
    fn exact_cmp_matches_float_cmp_when_floats_are_safe() {
        for a in Alignment::ALL {
            for c1 in 0..=4u32 {
                for l1 in c1.max(1)..=6 {
                    for c2 in 0..=4u32 {
                        for l2 in c2.max(1)..=6 {
                            let exact = a.cmp_scores((c1, l1), (c2, l2), 8);
                            let f1 = a.score(c1, l1, 8);
                            let f2 = a.score(c2, l2, 8);
                            let float = f1.partial_cmp(&f2).unwrap();
                            assert_eq!(exact, float, "{a}: ({c1},{l1}) vs ({c2},{l2})");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Alignment::Lta.to_string(), "LTA");
        assert_eq!(Alignment::Wmr.name(), "WMR");
        assert_eq!(Alignment::Jac.to_string(), "JAC");
        assert_eq!(Alignment::default(), Alignment::Lta);
    }
}

//! The built GraphEx model: per-leaf graphs + vocabularies + inference API.

use crate::alignment::Alignment;
use crate::error::{GraphExError, Result};
use crate::inference::{collect_title_tokens, infer_on_graph, InferenceParams, Prediction, Scratch};
use crate::leaf_graph::LeafGraph;
use crate::service::{InferRequest, InferResponse, Outcome};
use crate::types::{KeyphraseId, LeafId};
use graphex_textkit::{FxHashMap, Tokenizer, TokenizerBuilder, Vocab};

/// A constructed GraphEx model (output of [`crate::GraphExBuilder::build`]).
///
/// Immutable and `Sync`: share it across threads by reference; each thread
/// owns a [`Scratch`].
#[derive(Debug, Clone)]
pub struct GraphExModel {
    pub(crate) tokens: Vocab,
    pub(crate) keyphrases: Vocab,
    pub(crate) leaves: FxHashMap<LeafId, LeafGraph>,
    /// Meta-category fallback graph for unknown leaves (union of all
    /// curated keyphrases), if configured.
    pub(crate) fallback: Option<Box<LeafGraph>>,
    pub(crate) alignment: Alignment,
    pub(crate) stemming: bool,
    pub(crate) tokenizer: Tokenizer,
}

/// Aggregate model statistics (Table II's "# GraphEx Keyphrases" column,
/// Fig. 6b size accounting, DESIGN.md ablations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelStats {
    pub num_leaves: usize,
    /// Distinct tokens across all leaves (global vocabulary).
    pub num_tokens: usize,
    /// Distinct keyphrase strings (global).
    pub num_keyphrases: usize,
    /// Sum of per-leaf label counts (a phrase duplicated across leaves
    /// counts once per leaf).
    pub total_labels: usize,
    /// Sum of per-leaf edge counts.
    pub total_edges: usize,
    /// Mean of per-leaf average degrees, weighted by words.
    pub avg_degree: f64,
    /// Approximate in-memory footprint in bytes.
    pub heap_bytes: usize,
}

impl GraphExModel {
    pub(crate) fn make_tokenizer(stemming: bool) -> Tokenizer {
        TokenizerBuilder::new().stemming(stemming).build()
    }

    /// Recommends keyphrases for `title` in leaf category `leaf`.
    ///
    /// Falls back to the meta-category graph when the leaf is unknown and a
    /// fallback was built; otherwise returns [`GraphExError::UnknownLeaf`].
    /// Thin `Result` view over [`GraphExModel::infer_request`] (the single
    /// inference entry point), for callers that own explicit
    /// [`InferenceParams`].
    pub fn infer(
        &self,
        title: &str,
        leaf: LeafId,
        params: &InferenceParams,
        scratch: &mut Scratch,
    ) -> Result<Vec<Prediction>> {
        let request = InferRequest {
            title,
            leaf,
            k: params.k,
            alignment: params.alignment,
            keep_threshold_group: params.keep_threshold_group,
            id: None,
            resolve_texts: false,
        };
        let response = self.infer_request(&request, scratch);
        match response.outcome {
            Outcome::UnknownLeaf => Err(GraphExError::UnknownLeaf(leaf)),
            _ => Ok(response.predictions),
        }
    }

    /// Answers one typed [`InferRequest`], reporting provenance through
    /// [`InferResponse::outcome`] instead of an error or a silent empty vec.
    ///
    /// This is the single entry point behind every inference frontend; the
    /// pooled [`crate::Engine`] wraps it for `&self` callers, and
    /// [`crate::parallel::batch_infer`] fans it across threads.
    pub fn infer_request(&self, request: &InferRequest<'_>, scratch: &mut Scratch) -> InferResponse {
        let (graph, exact) = match self.leaves.get(&request.leaf) {
            Some(g) => (g, true),
            None => match &self.fallback {
                Some(g) => (&**g, false),
                None => return InferResponse::empty(request.id, Outcome::UnknownLeaf),
            },
        };
        collect_title_tokens(&self.tokenizer, &self.tokens, request.title, scratch);
        let alignment = request.alignment.unwrap_or(self.alignment);
        let predictions = infer_on_graph(graph, alignment, &request.params(), scratch);
        let outcome = if predictions.is_empty() {
            Outcome::Empty
        } else if exact {
            Outcome::ExactLeaf
        } else {
            Outcome::MetaFallback
        };
        let texts = if request.resolve_texts {
            predictions
                .iter()
                .map(|p| self.keyphrase_text(p.keyphrase).unwrap_or_default().to_string())
                .collect()
        } else {
            Vec::new()
        };
        InferResponse { id: request.id, outcome, predictions, texts }
    }

    /// The text of a keyphrase id (normalized query text).
    pub fn keyphrase_text(&self, id: KeyphraseId) -> Option<&str> {
        self.keyphrases.resolve(id)
    }

    /// Id of a keyphrase text, if present in the model.
    pub fn keyphrase_id(&self, text: &str) -> Option<KeyphraseId> {
        self.keyphrases.get(text)
    }

    /// Global token id of a (stemmed, normalized) word, if any keyphrase
    /// contains it. Exposed for diagnostics and ablation benches that drive
    /// [`crate::leaf_graph::LeafGraph`] adjacency directly.
    pub fn token_id(&self, token: &str) -> Option<graphex_textkit::TokenId> {
        self.tokens.get(token)
    }

    /// Tokenizes a title exactly the way inference does (normalization +
    /// optional stemming), for external consumers replicating the pipeline.
    pub fn tokenize_title(&self, title: &str) -> Vec<String> {
        self.tokenizer.tokenize(title).collect()
    }

    /// The leaf categories with a dedicated graph.
    pub fn leaf_ids(&self) -> impl Iterator<Item = LeafId> + '_ {
        self.leaves.keys().copied()
    }

    /// The graph of one leaf, if present.
    pub fn leaf_graph(&self, leaf: LeafId) -> Option<&LeafGraph> {
        self.leaves.get(&leaf)
    }

    /// Whether a meta-category fallback graph exists.
    pub fn has_fallback(&self) -> bool {
        self.fallback.is_some()
    }

    /// The meta-category fallback graph, if one was built.
    pub fn fallback_graph(&self) -> Option<&LeafGraph> {
        self.fallback.as_deref()
    }

    /// The ranking alignment this model defaults to.
    pub fn alignment(&self) -> Alignment {
        self.alignment
    }

    /// Whether titles/keyphrases are stemmed.
    pub fn stemming(&self) -> bool {
        self.stemming
    }

    /// Number of distinct keyphrase strings.
    pub fn num_keyphrases(&self) -> usize {
        self.keyphrases.len()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ModelStats {
        let total_labels: usize = self.leaves.values().map(|g| g.num_labels() as usize).sum();
        let total_edges: usize = self.leaves.values().map(|g| g.num_edges()).sum();
        let total_words: usize = self.leaves.values().map(|g| g.num_words() as usize).sum();
        let heap: usize = self.leaves.values().map(|g| g.heap_bytes()).sum::<usize>()
            + self.fallback.as_ref().map_or(0, |g| g.heap_bytes())
            + self.tokens.heap_bytes()
            + self.keyphrases.heap_bytes();
        ModelStats {
            num_leaves: self.leaves.len(),
            num_tokens: self.tokens.len(),
            num_keyphrases: self.keyphrases.len(),
            total_labels,
            total_edges,
            avg_degree: if total_words == 0 { 0.0 } else { total_edges as f64 / total_words as f64 },
            heap_bytes: heap,
        }
    }

    /// Serialized size in bytes (the paper's Fig. 6b model-size metric).
    pub fn size_bytes(&self) -> usize {
        crate::serialize::to_bytes(self).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphExBuilder, GraphExConfig};
    use crate::types::KeyphraseRecord;

    fn sample_model(fallback: bool) -> GraphExModel {
        let leaf = LeafId(7);
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        config.build_meta_fallback = fallback;
        GraphExBuilder::new(config)
            .add_records(vec![
                KeyphraseRecord::new("audeze maxwell", leaf, 900, 120),
                KeyphraseRecord::new("audeze headphones", leaf, 450, 300),
                KeyphraseRecord::new("gaming headphones xbox", leaf, 800, 700),
                KeyphraseRecord::new("wireless headphones xbox", leaf, 650, 800),
                KeyphraseRecord::new("bluetooth wireless headphones", leaf, 300, 900),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn infer_end_to_end_figure3() {
        let model = sample_model(false);
        let mut scratch = Scratch::new();
        let req = InferRequest::new("Audeze Maxwell gaming headphones for Xbox", LeafId(7))
            .k(5)
            .resolve_texts(true);
        let resp = model.infer_request(&req, &mut scratch);
        assert_eq!(resp.outcome, Outcome::ExactLeaf);
        assert_eq!(resp.texts[0], "gaming headphones xbox"); // full match, LTA 3.0
        assert_eq!(resp.texts[1], "audeze maxwell"); // LTA 2.0, S=900
        assert_eq!(resp.texts[2], "audeze headphones");
    }

    #[test]
    fn unknown_leaf_errors_without_fallback() {
        let model = sample_model(false);
        let mut scratch = Scratch::new();
        let err = model.infer("anything", LeafId(999), &InferenceParams::default(), &mut scratch);
        assert!(matches!(err, Err(GraphExError::UnknownLeaf(LeafId(999)))));
        // The envelope reports it as an outcome instead of an error.
        let resp = model.infer_request(&InferRequest::new("anything", LeafId(999)), &mut scratch);
        assert_eq!(resp.outcome, Outcome::UnknownLeaf);
        assert!(resp.is_empty());
    }

    #[test]
    fn unknown_leaf_uses_fallback_when_built() {
        let model = sample_model(true);
        assert!(model.has_fallback());
        let mut scratch = Scratch::new();
        let resp = model
            .infer_request(&InferRequest::new("audeze maxwell headphones", LeafId(999)).k(5), &mut scratch);
        assert_eq!(resp.outcome, Outcome::MetaFallback);
        assert!(!resp.predictions.is_empty());
    }

    #[test]
    fn keyphrase_text_id_roundtrip() {
        let model = sample_model(false);
        let id = model.keyphrase_id("audeze maxwell").unwrap();
        assert_eq!(model.keyphrase_text(id), Some("audeze maxwell"));
        assert_eq!(model.keyphrase_text(u32::MAX), None);
    }

    #[test]
    fn stats_shape() {
        let model = sample_model(false);
        let stats = model.stats();
        assert_eq!(stats.num_leaves, 1);
        assert_eq!(stats.num_keyphrases, 5);
        assert_eq!(stats.total_labels, 5);
        assert!(stats.num_tokens >= 7);
        assert!(stats.total_edges >= 13);
        assert!(stats.heap_bytes > 0);
        assert!(stats.avg_degree > 1.0);
    }

    #[test]
    fn model_is_sync_send() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<GraphExModel>();
    }
}

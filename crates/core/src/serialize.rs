//! Binary model formats: `GEXM` v1 (legacy, copying) and v2 (zero-copy).
//!
//! A GraphEx model is a set of integer arrays plus two string tables. Two
//! on-disk layouts share the `GEXM` magic and an FNV-1a checksum trailer,
//! dispatched on the version field:
//!
//! * **v1** — a length-prefixed stream. Every array is re-materialized on
//!   load (one copy per edge) and both string tables are re-interned.
//!   Kept for reading old snapshots and as the baseline side of the
//!   `snapshot_lifecycle` bench; written only by [`to_bytes_v1`].
//! * **v2** — the default ([`to_bytes`]). A fixed 32-byte header, a
//!   **section directory**, and every integer array stored as a raw
//!   little-endian section on an **8-byte boundary**. The loader borrows
//!   the CSR/label/score arrays straight out of the load buffer
//!   ([`bytes::Bytes`]-backed [`crate::storage::PodView`]s) — zero
//!   per-edge copies, and mmap-ready: any `AsRef<[u8]>` owner with an
//!   8-aligned base can back [`from_shared`]. Only the string tables and
//!   the per-leaf word index are materialized (O(strings + words)).
//!
//! v2 layout (little-endian throughout):
//!
//! ```text
//! off  0  magic            b"GEXM"
//! off  4  u32  version     (= 2)
//! off  8  u8   flags       (bit0 stemming, bit1 has_fallback)
//! off  9  u8   alignment   (0 LTA, 1 WMR, 2 JAC)
//! off 10  u16  reserved    (= 0)
//! off 12  u32  num_leaves
//! off 16  u64  directory_offset   (8-aligned, sections end here)
//! off 24  u32  section_count
//! off 28  u32  reserved    (= 0)
//! off 32  sections…        each padded to an 8-byte boundary
//!         directory        section_count × 32-byte entries:
//!                          (u32 kind, u32 owner, u64 offset,
//!                           u64 byte_len, u64 elem_count)
//!         u64 fnv1a        checksum of everything above
//! ```
//!
//! Section kinds: leaf-id table and the two vocab blobs (owner = `!0`),
//! then per graph (owner = leaf index, or `!0` for the meta fallback):
//! row-tokens, CSR offsets, CSR targets, labels, label-lens (u16),
//! search counts, recall counts.
//!
//! Deserialization of either version validates every structural invariant
//! (checksum first, then CSR monotonicity, parallel array lengths, label
//! ranges, section bounds/alignment) and fails with
//! [`GraphExError::Corrupt`] rather than panicking — corrupt model files
//! are an expected operational failure, not a bug.

use crate::alignment::Alignment;
use crate::error::{GraphExError, Result};
use crate::leaf_graph::LeafGraph;
use crate::model::GraphExModel;
use crate::storage::{AlignedBuf, PodView};
use crate::types::LeafId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use graphex_textkit::{FxHashMap, Vocab};
use std::io::Write;
use std::path::Path;

const MAGIC: &[u8; 4] = b"GEXM";
/// Legacy copying format.
pub const VERSION_V1: u32 = 1;
/// Current zero-copy format.
pub const VERSION_V2: u32 = 2;
/// Fixed v2 header length in bytes.
pub const V2_HEADER_LEN: usize = 32;
/// v2 directory entry length in bytes.
pub const V2_DIR_ENTRY_LEN: usize = 32;
/// Section owner value meaning "not a leaf graph" (tables, vocabs, the
/// meta-fallback graph).
pub const V2_NO_OWNER: u32 = u32::MAX;

/// v2 section kinds (directory `kind` field).
pub mod section {
    pub const LEAF_TABLE: u32 = 1;
    pub const TOKENS_VOCAB: u32 = 2;
    pub const KEYPHRASES_VOCAB: u32 = 3;
    pub const ROW_TOKENS: u32 = 4;
    pub const CSR_OFFSETS: u32 = 5;
    pub const CSR_TARGETS: u32 = 6;
    pub const LABELS: u32 = 7;
    pub const LABEL_LENS: u32 = 8;
    pub const SEARCH: u32 = 9;
    pub const RECALL: u32 = 10;

    /// The seven per-graph kinds, in serialized order.
    pub const GRAPH_KINDS: [u32; 7] =
        [ROW_TOKENS, CSR_OFFSETS, CSR_TARGETS, LABELS, LABEL_LENS, SEARCH, RECALL];
}

/// Serializes `model` in the current (v2, zero-copy-loadable) format.
pub fn to_bytes(model: &GraphExModel) -> Bytes {
    to_bytes_v2(model)
}

/// FNV-1a of `data` — the checksum both formats append and the value the
/// registry records in snapshot manifests.
pub fn checksum(data: &[u8]) -> u64 {
    fnv1a(data)
}

// ====================================================================
// v1: legacy length-prefixed stream
// ====================================================================

/// Serializes `model` in the legacy v1 format (copying loader). Kept for
/// migration tooling and as the baseline in the snapshot benches.
pub fn to_bytes_v1(model: &GraphExModel) -> Bytes {
    let mut buf = BytesMut::with_capacity(1024);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION_V1);
    buf.put_u8(model_flags(model));
    buf.put_u8(alignment_tag(model.alignment));
    put_vocab(&mut buf, &model.tokens);
    put_vocab(&mut buf, &model.keyphrases);

    let leaf_ids = sorted_leaf_ids(model);
    buf.put_u32_le(leaf_ids.len() as u32);
    for leaf in leaf_ids {
        buf.put_u32_le(leaf.0);
        put_graph(&mut buf, &model.leaves[&leaf]);
    }
    if let Some(fb) = &model.fallback {
        put_graph(&mut buf, fb);
    }
    let checksum = fnv1a(&buf);
    buf.put_u64_le(checksum);
    buf.freeze()
}

fn parse_v1(payload: &[u8]) -> Result<GraphExModel> {
    // `payload` excludes the trailer; checksum/magic/version were already
    // verified by `preflight`.
    let mut buf = &payload[8..];
    let flags = buf.get_u8();
    let stemming = flags & 1 != 0;
    let has_fallback = flags & 2 != 0;
    let alignment = alignment_from_tag(buf.get_u8())?;

    let tokens = get_vocab(&mut buf)?;
    let keyphrases = get_vocab(&mut buf)?;

    let num_leaves = checked_count(&mut buf, "leaf count")? as usize;
    let mut leaves: FxHashMap<LeafId, LeafGraph> =
        FxHashMap::with_capacity_and_hasher(num_leaves, Default::default());
    for _ in 0..num_leaves {
        if buf.remaining() < 4 {
            return Err(GraphExError::Corrupt("truncated leaf id".into()));
        }
        let leaf = LeafId(buf.get_u32_le());
        let graph = get_graph(&mut buf, keyphrases.len() as u32)?;
        if leaves.insert(leaf, graph).is_some() {
            return Err(GraphExError::Corrupt(format!("duplicate {leaf}")));
        }
    }
    let fallback = if has_fallback { Some(Box::new(get_graph(&mut buf, keyphrases.len() as u32)?)) } else { None };
    if buf.has_remaining() {
        return Err(GraphExError::Corrupt("trailing bytes after model".into()));
    }

    Ok(GraphExModel {
        tokenizer: GraphExModel::make_tokenizer(stemming),
        tokens,
        keyphrases,
        leaves,
        fallback,
        alignment,
        stemming,
    })
}

// ====================================================================
// v2: aligned sections + directory, zero-copy load
// ====================================================================

/// Serializes `model` in the v2 format (see the module docs for the
/// layout).
pub fn to_bytes_v2(model: &GraphExModel) -> Bytes {
    let leaf_ids = sorted_leaf_ids(model);

    let mut buf = BytesMut::with_capacity(4096);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION_V2);
    buf.put_u8(model_flags(model));
    buf.put_u8(alignment_tag(model.alignment));
    buf.put_u16_le(0); // reserved
    buf.put_u32_le(leaf_ids.len() as u32);
    buf.put_u64_le(0); // directory offset, patched below
    buf.put_u32_le(0); // section count, patched below
    buf.put_u32_le(0); // reserved
    debug_assert_eq!(buf.len(), V2_HEADER_LEN);

    let mut dir: Vec<RawSection> = Vec::new();

    put_section(&mut buf, &mut dir, section::LEAF_TABLE, V2_NO_OWNER, leaf_ids.len() as u64, |b| {
        for leaf in &leaf_ids {
            b.put_u32_le(leaf.0);
        }
    });
    put_section(&mut buf, &mut dir, section::TOKENS_VOCAB, V2_NO_OWNER, model.tokens.len() as u64, |b| {
        put_vocab_blob(b, &model.tokens);
    });
    put_section(
        &mut buf,
        &mut dir,
        section::KEYPHRASES_VOCAB,
        V2_NO_OWNER,
        model.keyphrases.len() as u64,
        |b| put_vocab_blob(b, &model.keyphrases),
    );
    for (index, leaf) in leaf_ids.iter().enumerate() {
        put_graph_sections(&mut buf, &mut dir, index as u32, &model.leaves[leaf]);
    }
    if let Some(fb) = &model.fallback {
        put_graph_sections(&mut buf, &mut dir, V2_NO_OWNER, fb);
    }

    pad_to_8(&mut buf);
    let dir_offset = buf.len() as u64;
    let section_count = dir.len() as u32;
    for entry in &dir {
        buf.put_u32_le(entry.kind);
        buf.put_u32_le(entry.owner);
        buf.put_u64_le(entry.offset);
        buf.put_u64_le(entry.byte_len);
        buf.put_u64_le(entry.elems);
    }
    buf[16..24].copy_from_slice(&dir_offset.to_le_bytes());
    buf[24..28].copy_from_slice(&section_count.to_le_bytes());

    let checksum = fnv1a(&buf);
    buf.put_u64_le(checksum);
    buf.freeze()
}

/// One directory entry (also returned by [`inspect`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawSection {
    pub kind: u32,
    /// Leaf index this section belongs to, or [`V2_NO_OWNER`] for tables,
    /// vocabs, and the fallback graph.
    pub owner: u32,
    /// Absolute byte offset (8-aligned).
    pub offset: u64,
    pub byte_len: u64,
    /// Element count: array length, or string count for vocab blobs.
    pub elems: u64,
}

/// Parses a model from a byte slice.
///
/// Dispatches on the format version: v1 streams are materialized with
/// owned arrays; v2 buffers are **copied once** into an 8-byte-aligned
/// buffer and then loaded zero-copy from that copy (a borrowed slice
/// cannot be refcounted). Call [`from_shared`] (or [`load_from`]) with an
/// aligned [`Bytes`] to skip the realign copy entirely.
pub fn from_bytes(data: &[u8]) -> Result<GraphExModel> {
    match preflight(data)? {
        VERSION_V1 => parse_v1(&data[..data.len() - 8]),
        VERSION_V2 => parse_v2(Bytes::from_owner(AlignedBuf::copy_from(data))),
        other => Err(GraphExError::UnsupportedVersion(other)),
    }
}

/// Parses a model from a shared buffer, borrowing all v2 array sections
/// from it — the zero-copy load path.
///
/// The buffer must be 8-byte aligned for the borrow to be taken directly
/// (buffers produced by [`AlignedBuf`] — and any mmap — always are); an
/// unaligned buffer is realigned with one copy rather than rejected.
pub fn from_shared(data: Bytes) -> Result<GraphExModel> {
    match preflight(&data)? {
        VERSION_V1 => parse_v1(&data[..data.len() - 8]),
        VERSION_V2 => {
            if data.as_ptr() as usize % 8 == 0 {
                parse_v2(data)
            } else {
                parse_v2(Bytes::from_owner(AlignedBuf::copy_from(&data)))
            }
        }
        other => Err(GraphExError::UnsupportedVersion(other)),
    }
}

fn parse_v2(data: Bytes) -> Result<GraphExModel> {
    debug_assert_eq!(data.as_ptr() as usize % 8, 0, "parse_v2 requires an aligned buffer");
    if data.len() < V2_HEADER_LEN + 8 {
        return Err(GraphExError::Corrupt("v2 file too short".into()));
    }
    // Header.
    let flags = data[8];
    let stemming = flags & 1 != 0;
    let has_fallback = flags & 2 != 0;
    let alignment = alignment_from_tag(data[9])?;
    let num_leaves = read_u32(&data, 12) as usize;
    let dir_offset = read_u64(&data, 16);

    // Directory decode + bounds (shared with `inspect`), then the
    // per-entry checks only the full load needs: every section 8-aligned
    // inside [header, directory), and no duplicate (kind, owner) key.
    let entries = read_directory(&data)?;
    let mut sections: FxHashMap<(u32, u32), RawSection> =
        FxHashMap::with_capacity_and_hasher(entries.len(), Default::default());
    for (i, entry) in entries.into_iter().enumerate() {
        let end = entry.offset.checked_add(entry.byte_len);
        if entry.offset % 8 != 0 || entry.offset < V2_HEADER_LEN as u64 || end.is_none() || end > Some(dir_offset) {
            return Err(GraphExError::Corrupt(format!("section {i} out of bounds")));
        }
        if sections.insert((entry.kind, entry.owner), entry).is_some() {
            return Err(GraphExError::Corrupt(format!(
                "duplicate section kind {} owner {}",
                entry.kind, entry.owner
            )));
        }
    }
    let mut consumed = 0usize;
    let mut take = |kind: u32, owner: u32| -> Result<RawSection> {
        consumed += 1;
        sections
            .get(&(kind, owner))
            .copied()
            .ok_or_else(|| GraphExError::Corrupt(format!("missing section kind {kind} owner {owner}")))
    };

    // Tables and vocabs.
    let leaf_table = take(section::LEAF_TABLE, V2_NO_OWNER)?;
    if leaf_table.elems != num_leaves as u64 {
        return Err(GraphExError::Corrupt("leaf table length != num_leaves".into()));
    }
    let leaf_ids = u32_view(&data, &leaf_table)?;
    let tokens_sec = take(section::TOKENS_VOCAB, V2_NO_OWNER)?;
    let tokens = get_vocab_blob(section_bytes(&data, &tokens_sec), tokens_sec.elems)?;
    let keyphrases_sec = take(section::KEYPHRASES_VOCAB, V2_NO_OWNER)?;
    let keyphrases = get_vocab_blob(section_bytes(&data, &keyphrases_sec), keyphrases_sec.elems)?;
    let num_keyphrases = keyphrases.len() as u32;

    // Per-leaf graphs, then the fallback.
    let mut leaves: FxHashMap<LeafId, LeafGraph> =
        FxHashMap::with_capacity_and_hasher(num_leaves, Default::default());
    for index in 0..num_leaves {
        let graph = graph_from_sections(&data, index as u32, num_keyphrases, &mut take)?;
        let leaf = LeafId(leaf_ids[index]);
        if leaves.insert(leaf, graph).is_some() {
            return Err(GraphExError::Corrupt(format!("duplicate {leaf}")));
        }
    }
    let fallback = if has_fallback {
        Some(Box::new(graph_from_sections(&data, V2_NO_OWNER, num_keyphrases, &mut take)?))
    } else {
        None
    };
    if consumed != sections.len() {
        return Err(GraphExError::Corrupt("unexpected extra sections".into()));
    }

    Ok(GraphExModel {
        tokenizer: GraphExModel::make_tokenizer(stemming),
        tokens,
        keyphrases,
        leaves,
        fallback,
        alignment,
        stemming,
    })
}

fn graph_from_sections(
    data: &Bytes,
    owner: u32,
    num_keyphrases: u32,
    take: &mut impl FnMut(u32, u32) -> Result<RawSection>,
) -> Result<LeafGraph> {
    let row_tokens = u32_view(data, &take(section::ROW_TOKENS, owner)?)?;
    let offsets = u32_view(data, &take(section::CSR_OFFSETS, owner)?)?;
    let targets = u32_view(data, &take(section::CSR_TARGETS, owner)?)?;
    let labels = u32_view(data, &take(section::LABELS, owner)?)?;
    let label_lens = u16_view(data, &take(section::LABEL_LENS, owner)?)?;
    let search = u32_view(data, &take(section::SEARCH, owner)?)?;
    let recall = u32_view(data, &take(section::RECALL, owner)?)?;
    if labels.iter().any(|&kp| kp >= num_keyphrases) {
        return Err(GraphExError::Corrupt("label references unknown keyphrase".into()));
    }
    LeafGraph::from_stores(
        row_tokens.into(),
        offsets.into(),
        targets.into(),
        labels.into(),
        label_lens.into(),
        search.into(),
        recall.into(),
    )
    .map_err(GraphExError::Corrupt)
}

// ---- v2 writer helpers ------------------------------------------------

fn put_section(
    buf: &mut BytesMut,
    dir: &mut Vec<RawSection>,
    kind: u32,
    owner: u32,
    elems: u64,
    write: impl FnOnce(&mut BytesMut),
) {
    pad_to_8(buf);
    let offset = buf.len() as u64;
    write(buf);
    dir.push(RawSection { kind, owner, offset, byte_len: buf.len() as u64 - offset, elems });
}

fn put_graph_sections(buf: &mut BytesMut, dir: &mut Vec<RawSection>, owner: u32, graph: &LeafGraph) {
    let (offsets, targets) = graph.csr_parts();
    let arrays: [(&[u32], u32); 6] = [
        (graph.row_tokens(), section::ROW_TOKENS),
        (offsets, section::CSR_OFFSETS),
        (targets, section::CSR_TARGETS),
        (graph.labels(), section::LABELS),
        (graph.searches(), section::SEARCH),
        (graph.recalls(), section::RECALL),
    ];
    for (vals, kind) in arrays.iter().take(4).copied() {
        put_section(buf, dir, kind, owner, vals.len() as u64, |b| {
            for &v in vals {
                b.put_u32_le(v);
            }
        });
    }
    put_section(buf, dir, section::LABEL_LENS, owner, graph.label_lens().len() as u64, |b| {
        for &l in graph.label_lens() {
            b.put_u16_le(l);
        }
    });
    for (vals, kind) in arrays.iter().skip(4).copied() {
        put_section(buf, dir, kind, owner, vals.len() as u64, |b| {
            for &v in vals {
                b.put_u32_le(v);
            }
        });
    }
}

fn pad_to_8(buf: &mut BytesMut) {
    while buf.len() % 8 != 0 {
        buf.put_u8(0);
    }
}

fn put_vocab_blob(buf: &mut BytesMut, vocab: &Vocab) {
    for (_, s) in vocab.iter() {
        debug_assert!(s.len() <= u16::MAX as usize);
        buf.put_u16_le(s.len() as u16);
        buf.put_slice(s.as_bytes());
    }
}

fn get_vocab_blob(mut blob: &[u8], count: u64) -> Result<Vocab> {
    let count = usize::try_from(count)
        .map_err(|_| GraphExError::Corrupt("implausible vocab count".into()))?;
    if count > blob.len() {
        // Every entry takes at least 2 bytes; cheap plausibility gate.
        return Err(GraphExError::Corrupt(format!("implausible vocab count: {count}")));
    }
    let mut vocab = Vocab::with_capacity(count);
    for i in 0..count {
        if blob.remaining() < 2 {
            return Err(GraphExError::Corrupt("truncated vocab entry length".into()));
        }
        let len = blob.get_u16_le() as usize;
        if blob.remaining() < len {
            return Err(GraphExError::Corrupt("truncated vocab entry".into()));
        }
        let (head, rest) = blob.split_at(len);
        let s = std::str::from_utf8(head)
            .map_err(|_| GraphExError::Corrupt("vocab entry is not utf-8".into()))?;
        let id = vocab.intern(s);
        if id as usize != i {
            return Err(GraphExError::Corrupt("duplicate vocab entry".into()));
        }
        blob = rest;
    }
    if blob.has_remaining() {
        return Err(GraphExError::Corrupt("trailing bytes in vocab section".into()));
    }
    Ok(vocab)
}

// ---- v2 reader helpers ------------------------------------------------

fn section_bytes<'a>(data: &'a Bytes, sec: &RawSection) -> &'a [u8] {
    // Bounds were validated against the directory when `sec` was parsed.
    &data[sec.offset as usize..(sec.offset + sec.byte_len) as usize]
}

fn section_slice(data: &Bytes, sec: &RawSection) -> Bytes {
    data.slice(sec.offset as usize..(sec.offset + sec.byte_len) as usize)
}

fn u32_view(data: &Bytes, sec: &RawSection) -> Result<PodView<u32>> {
    if sec.byte_len != sec.elems.wrapping_mul(4) {
        return Err(GraphExError::Corrupt("u32 section length mismatch".into()));
    }
    PodView::new(section_slice(data, sec))
        .ok_or_else(|| GraphExError::Corrupt("misaligned u32 section".into()))
}

fn u16_view(data: &Bytes, sec: &RawSection) -> Result<PodView<u16>> {
    if sec.byte_len != sec.elems.wrapping_mul(2) {
        return Err(GraphExError::Corrupt("u16 section length mismatch".into()));
    }
    PodView::new(section_slice(data, sec))
        .ok_or_else(|| GraphExError::Corrupt("misaligned u16 section".into()))
}

fn read_u32(data: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes"))
}

fn read_u64(data: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes"))
}

// ====================================================================
// Common entry points
// ====================================================================

/// Verifies the checksum trailer and magic, returning the format version.
/// The checksum runs **first**, so any corruption — including of the
/// version field itself — reports [`GraphExError::Corrupt`], never a
/// bogus [`GraphExError::UnsupportedVersion`].
fn preflight(data: &[u8]) -> Result<u32> {
    if data.len() < MAGIC.len() + 4 + 2 + 8 {
        return Err(GraphExError::Corrupt("file too short".into()));
    }
    let (payload, trailer) = data.split_at(data.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    if fnv1a(payload) != stored {
        return Err(GraphExError::Corrupt("checksum mismatch".into()));
    }
    if &payload[..4] != MAGIC {
        return Err(GraphExError::Corrupt("bad magic".into()));
    }
    Ok(read_u32(payload, 4))
}

/// Writes the model to `path` (buffered, v2 format).
pub fn save_to(model: &GraphExModel, path: impl AsRef<Path>) -> Result<()> {
    write_bytes_to(&to_bytes(model), path)
}

/// Writes an already-serialized snapshot to `path` (buffered).
pub fn write_bytes_to(bytes: &[u8], path: impl AsRef<Path>) -> Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(bytes)?;
    file.flush()?;
    Ok(())
}

/// Reads a model from `path`.
///
/// The file is read straight into an 8-byte-aligned buffer, so a v2
/// snapshot loads zero-copy: the returned model's CSR/label/score arrays
/// borrow from that single buffer for the model's lifetime. See
/// [`load_snapshot`] for the mmap-backed variant.
///
/// Errors name the offending file: the path is threaded into `Io` and
/// `Corrupt` payloads (variants are preserved).
pub fn load_from(path: impl AsRef<Path>) -> Result<GraphExModel> {
    let path = path.as_ref();
    read_aligned(path)
        .and_then(from_shared)
        .map_err(|e| e.with_path(path))
}

/// How a snapshot's backing buffer is (or should be) held in memory.
///
/// As a *request* (to [`read_snapshot`]/[`load_snapshot`] or the
/// serving registry), `Mmap` means "map if the platform can, fall back
/// to a heap read", and `Heap` forces the read. As a *result*, it
/// reports which backend actually served the load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadMode {
    /// Borrow the file straight off the page cache via `mmap`. Cold
    /// start touches only the pages inference actually reads, and all
    /// processes mapping one snapshot share physical memory.
    #[default]
    Mmap,
    /// Copy the whole file into an anonymous 8-aligned heap buffer.
    Heap,
}

impl LoadMode {
    pub fn as_str(self) -> &'static str {
        match self {
            LoadMode::Mmap => "mmap",
            LoadMode::Heap => "heap",
        }
    }
}

impl std::fmt::Display for LoadMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Reads a model from `path` with the requested storage backend,
/// returning the backend that actually served it.
///
/// Both paths hand [`from_shared`] an 8-aligned buffer (mmap bases are
/// page-aligned; the heap path uses [`AlignedBuf`]), so a v2 snapshot
/// loads zero-copy either way and the checksum preflight runs before
/// any version dispatch regardless of backend. A failed `mmap` —
/// unsupported target, exotic filesystem — degrades to the heap read
/// rather than erroring.
///
/// The mmap path requires the file to be immutable while the model is
/// alive (truncation would fault); the registry upholds this by mapping
/// only published, staged-then-renamed snapshots.
pub fn load_snapshot(path: impl AsRef<Path>, prefer: LoadMode) -> Result<(GraphExModel, LoadMode)> {
    let path = path.as_ref();
    let (bytes, mode) = read_snapshot(path, prefer)?;
    let model = from_shared(bytes).map_err(|e| e.with_path(path))?;
    Ok((model, mode))
}

/// Reads a whole file into a shared buffer via the requested backend
/// (mmap with heap fallback, or heap directly), reporting which one was
/// used. Errors carry the file path.
pub fn read_snapshot(path: impl AsRef<Path>, prefer: LoadMode) -> Result<(Bytes, LoadMode)> {
    let path = path.as_ref();
    if prefer == LoadMode::Mmap {
        let file = std::fs::File::open(path).map_err(|e| GraphExError::from(e).with_path(path))?;
        if let Ok(map) = memmap::Mmap::map(&file) {
            return Ok((Bytes::from_owner(map), LoadMode::Mmap));
        }
    }
    let bytes = read_aligned(path).map_err(|e| e.with_path(path))?;
    Ok((bytes, LoadMode::Heap))
}

/// Reads a whole file into an aligned shared buffer (the v2 load buffer).
pub fn read_aligned(path: impl AsRef<Path>) -> Result<Bytes> {
    let file = std::fs::File::open(path)?;
    let len = usize::try_from(file.metadata()?.len())
        .map_err(|_| GraphExError::Corrupt("file too large for this platform".into()))?;
    let mut reader = std::io::BufReader::new(file);
    Ok(Bytes::from_owner(AlignedBuf::read_exact(&mut reader, len)?))
}

/// Cheap snapshot metadata (no graph materialization for v2): what
/// `graphex model inspect` prints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    pub version: u32,
    pub stemming: bool,
    pub has_fallback: bool,
    pub alignment: Alignment,
    pub num_leaves: u64,
    pub num_tokens: u64,
    pub num_keyphrases: u64,
    /// v2 only: number of directory sections.
    pub num_sections: Option<u32>,
    pub size_bytes: usize,
    /// The stored FNV-1a trailer.
    pub checksum: u64,
}

/// Inspects a serialized snapshot: header + directory for v2 (cheap), a
/// full parse for v1 (the stream has no summary header).
pub fn inspect(data: &[u8]) -> Result<SnapshotInfo> {
    let version = preflight(data)?;
    let stored_checksum = u64::from_le_bytes(data[data.len() - 8..].try_into().expect("trailer"));
    match version {
        VERSION_V1 => {
            let model = from_bytes(data)?;
            Ok(SnapshotInfo {
                version,
                stemming: model.stemming(),
                has_fallback: model.has_fallback(),
                alignment: model.alignment(),
                num_leaves: model.leaf_ids().count() as u64,
                num_tokens: model.tokens.len() as u64,
                num_keyphrases: model.num_keyphrases() as u64,
                num_sections: None,
                size_bytes: data.len(),
                checksum: stored_checksum,
            })
        }
        VERSION_V2 => {
            if data.len() < V2_HEADER_LEN + 8 {
                return Err(GraphExError::Corrupt("v2 file too short".into()));
            }
            let sections = read_directory(data)?;
            let elems_of = |kind: u32| {
                sections
                    .iter()
                    .find(|s| s.kind == kind && s.owner == V2_NO_OWNER)
                    .map_or(0, |s| s.elems)
            };
            Ok(SnapshotInfo {
                version,
                stemming: data[8] & 1 != 0,
                has_fallback: data[8] & 2 != 0,
                alignment: alignment_from_tag(data[9])?,
                num_leaves: u64::from(read_u32(data, 12)),
                num_tokens: elems_of(section::TOKENS_VOCAB),
                num_keyphrases: elems_of(section::KEYPHRASES_VOCAB),
                num_sections: Some(read_u32(data, 24)),
                size_bytes: data.len(),
                checksum: stored_checksum,
            })
        }
        other => Err(GraphExError::UnsupportedVersion(other)),
    }
}

/// Builds a [`SnapshotInfo`] for a model that was *already parsed* from
/// `data` — header fields are read back without re-validating or
/// re-scanning the buffer, so callers that hold both (e.g. registry
/// `verify`) pay exactly one parse. `data` must be the validated bytes
/// the model came from.
pub fn inspect_model(model: &GraphExModel, data: &[u8]) -> SnapshotInfo {
    let version = read_u32(data, 4);
    SnapshotInfo {
        version,
        stemming: model.stemming(),
        has_fallback: model.has_fallback(),
        alignment: model.alignment(),
        num_leaves: model.leaf_ids().count() as u64,
        num_tokens: model.tokens.len() as u64,
        num_keyphrases: model.num_keyphrases() as u64,
        num_sections: (version == VERSION_V2).then(|| read_u32(data, 24)),
        size_bytes: data.len(),
        checksum: u64::from_le_bytes(data[data.len() - 8..].try_into().expect("trailer")),
    }
}

/// Parses and bounds-checks the v2 section directory of a
/// checksum-verified buffer.
fn read_directory(data: &[u8]) -> Result<Vec<RawSection>> {
    let payload_len = (data.len() - 8) as u64;
    let dir_offset = read_u64(data, 16);
    let count = read_u32(data, 24) as usize;
    let dir_end = (count as u64)
        .checked_mul(V2_DIR_ENTRY_LEN as u64)
        .and_then(|l| dir_offset.checked_add(l));
    if dir_offset % 8 != 0 || dir_offset < V2_HEADER_LEN as u64 || dir_end != Some(payload_len) {
        return Err(GraphExError::Corrupt("directory out of bounds".into()));
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let base = dir_offset as usize + i * V2_DIR_ENTRY_LEN;
        out.push(RawSection {
            kind: read_u32(data, base),
            owner: read_u32(data, base + 4),
            offset: read_u64(data, base + 8),
            byte_len: read_u64(data, base + 16),
            elems: read_u64(data, base + 24),
        });
    }
    Ok(out)
}

// --- shared helpers ----------------------------------------------------

fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

fn model_flags(model: &GraphExModel) -> u8 {
    let mut flags = 0u8;
    if model.stemming {
        flags |= 1;
    }
    if model.fallback.is_some() {
        flags |= 2;
    }
    flags
}

fn alignment_tag(alignment: Alignment) -> u8 {
    match alignment {
        Alignment::Lta => 0,
        Alignment::Wmr => 1,
        Alignment::Jac => 2,
    }
}

fn alignment_from_tag(tag: u8) -> Result<Alignment> {
    match tag {
        0 => Ok(Alignment::Lta),
        1 => Ok(Alignment::Wmr),
        2 => Ok(Alignment::Jac),
        other => Err(GraphExError::Corrupt(format!("unknown alignment tag {other}"))),
    }
}

fn sorted_leaf_ids(model: &GraphExModel) -> Vec<LeafId> {
    let mut leaf_ids: Vec<LeafId> = model.leaves.keys().copied().collect();
    leaf_ids.sort_unstable();
    leaf_ids
}

fn put_vocab(buf: &mut BytesMut, vocab: &Vocab) {
    buf.put_u32_le(vocab.len() as u32);
    put_vocab_blob(buf, vocab);
}

fn get_vocab(buf: &mut &[u8]) -> Result<Vocab> {
    let count = checked_count(buf, "vocab count")? as usize;
    let mut vocab = Vocab::with_capacity(count);
    for i in 0..count {
        if buf.remaining() < 2 {
            return Err(GraphExError::Corrupt("truncated vocab entry length".into()));
        }
        let len = buf.get_u16_le() as usize;
        if buf.remaining() < len {
            return Err(GraphExError::Corrupt("truncated vocab entry".into()));
        }
        let (head, rest) = buf.split_at(len);
        let s = std::str::from_utf8(head)
            .map_err(|_| GraphExError::Corrupt("vocab entry is not utf-8".into()))?;
        let id = vocab.intern(s);
        if id as usize != i {
            return Err(GraphExError::Corrupt("duplicate vocab entry".into()));
        }
        *buf = rest;
    }
    Ok(vocab)
}

fn put_graph(buf: &mut BytesMut, graph: &LeafGraph) {
    put_u32s(buf, graph.row_tokens());
    let (offsets, targets) = graph.csr_parts();
    put_u32s(buf, offsets);
    put_u32s(buf, targets);
    put_u32s(buf, graph.labels());
    buf.put_u32_le(graph.label_lens().len() as u32);
    for &l in graph.label_lens() {
        buf.put_u16_le(l);
    }
    put_u32s(buf, graph.searches());
    put_u32s(buf, graph.recalls());
}

fn get_graph(buf: &mut &[u8], num_keyphrases: u32) -> Result<LeafGraph> {
    let row_tokens = get_u32s(buf, "row tokens")?;
    let offsets = get_u32s(buf, "csr offsets")?;
    let targets = get_u32s(buf, "csr targets")?;
    let labels = get_u32s(buf, "labels")?;
    if labels.iter().any(|&kp| kp >= num_keyphrases) {
        return Err(GraphExError::Corrupt("label references unknown keyphrase".into()));
    }
    let n = checked_count(buf, "label_len count")? as usize;
    if buf.remaining() < n * 2 {
        return Err(GraphExError::Corrupt("truncated label_len array".into()));
    }
    let mut label_len = Vec::with_capacity(n);
    for _ in 0..n {
        label_len.push(buf.get_u16_le());
    }
    let search = get_u32s(buf, "search counts")?;
    let recall = get_u32s(buf, "recall counts")?;
    LeafGraph::from_serialized(row_tokens, offsets, targets, labels, label_len, search, recall)
        .map_err(GraphExError::Corrupt)
}

fn put_u32s(buf: &mut BytesMut, vals: &[u32]) {
    buf.put_u32_le(vals.len() as u32);
    for &v in vals {
        buf.put_u32_le(v);
    }
}

fn get_u32s(buf: &mut &[u8], what: &str) -> Result<Vec<u32>> {
    let count = checked_count(buf, what)? as usize;
    if buf.remaining() < count * 4 {
        return Err(GraphExError::Corrupt(format!("truncated {what}")));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(buf.get_u32_le());
    }
    Ok(out)
}

fn checked_count(buf: &mut &[u8], what: &str) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(GraphExError::Corrupt(format!("truncated {what}")));
    }
    let count = buf.get_u32_le();
    // Guard against absurd counts from corrupt length fields: the count
    // cannot exceed the remaining bytes (every element is ≥ 1 byte).
    if count as usize > buf.remaining() * 8 {
        return Err(GraphExError::Corrupt(format!("implausible {what}: {count}")));
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphExBuilder, GraphExConfig};
    use crate::types::KeyphraseRecord;

    fn sample_model() -> GraphExModel {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        config.build_meta_fallback = false;
        GraphExBuilder::new(config)
            .add_records(vec![
                KeyphraseRecord::new("audeze maxwell", LeafId(7), 900, 120),
                KeyphraseRecord::new("gaming headphones xbox", LeafId(7), 800, 700),
                KeyphraseRecord::new("usb c charger", LeafId(9), 500, 50),
            ])
            .build()
            .unwrap()
    }

    fn infer_outputs(model: &GraphExModel) -> Vec<(Vec<String>, Vec<crate::Prediction>)> {
        let mut scratch = crate::Scratch::new();
        [
            ("audeze maxwell gaming headphones xbox", LeafId(7)),
            ("usb c wall charger", LeafId(9)),
            ("anything unknown", LeafId(12345)),
        ]
        .iter()
        .map(|&(title, leaf)| {
            let req = crate::InferRequest::new(title, leaf).k(10).resolve_texts(true);
            let resp = model.infer_request(&req, &mut scratch);
            (resp.texts, resp.predictions)
        })
        .collect()
    }

    #[test]
    fn v2_roundtrip_preserves_behavior() {
        let model = sample_model();
        let restored = from_bytes(&to_bytes(&model)).unwrap();
        assert_eq!(infer_outputs(&model), infer_outputs(&restored));
        assert_eq!(model.alignment(), restored.alignment());
        assert_eq!(model.stemming(), restored.stemming());
        assert_eq!(model.has_fallback(), restored.has_fallback());
    }

    #[test]
    fn v1_roundtrip_preserves_behavior() {
        let model = sample_model();
        let restored = from_bytes(&to_bytes_v1(&model)).unwrap();
        assert_eq!(infer_outputs(&model), infer_outputs(&restored));
    }

    #[test]
    fn v1_to_v2_migration_is_inference_identical() {
        let model = sample_model();
        let via_v1 = from_bytes(&to_bytes_v1(&model)).unwrap();
        let via_v2 = from_shared(to_bytes_v2(&via_v1)).unwrap();
        assert_eq!(infer_outputs(&model), infer_outputs(&via_v2));
    }

    #[test]
    fn v2_load_borrows_sections_zero_copy() {
        let model = sample_model();
        let bytes = to_bytes(&model);
        // from_shared on the (aligned) serializer output: zero-copy.
        let loaded = from_shared(bytes).unwrap();
        for leaf in loaded.leaf_ids() {
            assert!(loaded.leaf_graph(leaf).unwrap().is_zero_copy(), "{leaf} was copied");
        }
        // The owned construction path is not view-backed.
        assert!(!model.leaf_graph(LeafId(7)).unwrap().is_zero_copy());
        // The v1 loader copies (owned arrays).
        let v1 = from_bytes(&to_bytes_v1(&model)).unwrap();
        assert!(!v1.leaf_graph(LeafId(7)).unwrap().is_zero_copy());
    }

    #[test]
    fn file_roundtrip() {
        let model = sample_model();
        let dir = std::env::temp_dir().join("graphex-serialize-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.gexm");
        save_to(&model, &path).unwrap();
        let restored = load_from(&path).unwrap();
        assert_eq!(restored.num_keyphrases(), model.num_keyphrases());
        assert!(restored.leaf_ids().all(|l| restored.leaf_graph(l).unwrap().is_zero_copy()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_load_is_zero_copy_and_inference_identical_to_heap() {
        let model = sample_model();
        let dir = std::env::temp_dir().join(format!("graphex-mmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.gexm");
        save_to(&model, &path).unwrap();

        let (mapped, mode) = load_snapshot(&path, LoadMode::Mmap).unwrap();
        assert_eq!(mode, LoadMode::Mmap, "linux container should serve the mmap path");
        assert!(mapped.leaf_ids().all(|l| mapped.leaf_graph(l).unwrap().is_zero_copy()));

        let (heaped, heap_mode) = load_snapshot(&path, LoadMode::Heap).unwrap();
        assert_eq!(heap_mode, LoadMode::Heap);
        assert_eq!(infer_outputs(&mapped), infer_outputs(&heaped));
        assert_eq!(infer_outputs(&mapped), infer_outputs(&model));

        // The mapping outlives the file on disk.
        std::fs::remove_file(&path).unwrap();
        assert_eq!(infer_outputs(&mapped), infer_outputs(&model));
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn load_errors_name_the_file() {
        let dir = std::env::temp_dir().join(format!("graphex-loaderr-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.gexm");

        // Corrupt file: path prefixed, variant preserved.
        std::fs::write(&path, b"definitely not a model").unwrap();
        for prefer in [LoadMode::Mmap, LoadMode::Heap] {
            let err = load_snapshot(&path, prefer).unwrap_err();
            assert!(matches!(err, GraphExError::Corrupt(_)), "{err}");
            assert!(err.to_string().contains("bad.gexm"), "{err}");
        }
        let err = load_from(&path).unwrap_err();
        assert!(matches!(err, GraphExError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("bad.gexm"), "{err}");

        // Missing file: path threaded, io kind preserved.
        let missing = dir.join("missing.gexm");
        let err = load_snapshot(&missing, LoadMode::Mmap).unwrap_err();
        match &err {
            GraphExError::Io(io) => assert_eq!(io.kind(), std::io::ErrorKind::NotFound),
            other => panic!("expected Io, got {other}"),
        }
        assert!(err.to_string().contains("missing.gexm"), "{err}");

        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn golden_v2_header_layout() {
        // Pins the v2 header byte layout. If this test fails, the format
        // changed: bump the version number instead of silently drifting.
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        config.build_meta_fallback = true;
        let model = GraphExBuilder::new(config)
            .add_records(vec![
                KeyphraseRecord::new("audeze maxwell", LeafId(7), 900, 120),
                KeyphraseRecord::new("usb c charger", LeafId(9), 500, 50),
            ])
            .build()
            .unwrap();
        let bytes = to_bytes(&model);

        assert_eq!(&bytes[0..4], b"GEXM");
        assert_eq!(read_u32(&bytes, 4), 2, "version");
        assert_eq!(bytes[8], 0b11, "flags: stemming + fallback");
        assert_eq!(bytes[9], 0, "alignment tag: LTA");
        assert_eq!(&bytes[10..12], &[0, 0], "reserved");
        assert_eq!(read_u32(&bytes, 12), 2, "num_leaves");
        let dir_offset = read_u64(&bytes, 16);
        let section_count = read_u32(&bytes, 24);
        assert_eq!(&bytes[28..32], &[0, 0, 0, 0], "reserved");
        // 3 table/vocab sections + 7 per graph (2 leaves + fallback).
        assert_eq!(section_count, 3 + 7 * 3);
        assert_eq!(dir_offset % 8, 0);
        assert_eq!(
            dir_offset as usize + section_count as usize * V2_DIR_ENTRY_LEN + 8,
            bytes.len(),
            "directory runs exactly to the checksum trailer"
        );
        // First section: the leaf table, immediately after the header.
        assert_eq!(read_u32(&bytes, dir_offset as usize), section::LEAF_TABLE);
        assert_eq!(read_u64(&bytes, dir_offset as usize + 8), V2_HEADER_LEN as u64);
        // Every section is 8-aligned and inside [header, directory).
        for s in read_directory(&bytes).unwrap() {
            assert_eq!(s.offset % 8, 0, "section {s:?} misaligned");
            assert!(s.offset >= V2_HEADER_LEN as u64 && s.offset + s.byte_len <= dir_offset);
        }
    }

    #[test]
    fn detects_truncation() {
        let bytes = to_bytes(&sample_model());
        for cut in [0, 3, 10, 33, bytes.len() / 2, bytes.len() - 1] {
            let res = from_bytes(&bytes[..cut]);
            assert!(
                matches!(res, Err(GraphExError::Corrupt(_))),
                "truncation at {cut} not detected as Corrupt"
            );
        }
    }

    #[test]
    fn detects_bitflips_as_corrupt() {
        for bytes in [to_bytes(&sample_model()).to_vec(), to_bytes_v1(&sample_model()).to_vec()] {
            // Any flipped byte — header, payload, or trailer — must be
            // caught by the checksum, which runs before version dispatch.
            for pos in [0, 4, 8, bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
                let mut corrupted = bytes.clone();
                corrupted[pos] ^= 0xFF;
                assert!(
                    matches!(from_bytes(&corrupted), Err(GraphExError::Corrupt(_))),
                    "bitflip at {pos} not detected as Corrupt"
                );
            }
        }
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        let bytes = to_bytes(&sample_model()).to_vec();
        let n = bytes.len();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        // checksum catches it first; rewrite checksum to isolate magic check
        let sum = fnv1a(&wrong_magic[..n - 8]);
        wrong_magic[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(from_bytes(&wrong_magic), Err(GraphExError::Corrupt(_))));

        let mut wrong_version = bytes;
        wrong_version[4] = 99;
        let sum = fnv1a(&wrong_version[..n - 8]);
        wrong_version[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(from_bytes(&wrong_version), Err(GraphExError::UnsupportedVersion(99))));
    }

    #[test]
    fn v2_is_larger_but_loads_without_copies() {
        // Size sanity: v2 pays padding + directory overhead over v1.
        let model = sample_model();
        let v1 = to_bytes_v1(&model);
        let v2 = to_bytes(&model);
        assert!(v2.len() > v1.len());
        assert_eq!(model.size_bytes(), v2.len());
    }

    #[test]
    fn inspect_reads_both_versions() {
        let model = sample_model();
        let v2 = to_bytes(&model);
        let info = inspect(&v2).unwrap();
        assert_eq!(info.version, 2);
        assert_eq!(info.num_leaves, 2);
        assert_eq!(info.num_keyphrases, 3);
        assert!(info.num_tokens >= 7);
        assert_eq!(info.num_sections, Some(3 + 7 * 2));
        assert_eq!(info.size_bytes, v2.len());
        assert!(info.stemming);
        assert!(!info.has_fallback);

        let v1 = to_bytes_v1(&model);
        let info1 = inspect(&v1).unwrap();
        assert_eq!(info1.version, 1);
        assert_eq!(info1.num_leaves, 2);
        assert_eq!(info1.num_keyphrases, 3);
        assert_eq!(info1.num_sections, None);
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let res = load_from("/nonexistent/graphex/model.gexm");
        assert!(matches!(res, Err(GraphExError::Io(_))));
    }
}

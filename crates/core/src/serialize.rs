//! Binary model format.
//!
//! A GraphEx model is a set of integer arrays plus two string tables, so the
//! format is a straightforward length-prefixed dump with a magic, a version,
//! and an FNV-1a checksum trailer. The serialized length doubles as the
//! model-size metric of the paper's Fig. 6b.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  b"GEXM"
//! u32    version (= 1)
//! u8     flags (bit0 stemming, bit1 has_fallback)
//! u8     alignment (0 LTA, 1 WMR, 2 JAC)
//! vocab  tokens        (u32 count, then u16-len-prefixed utf-8 strings)
//! vocab  keyphrases
//! u32    num_leaves
//! leaf*  (u32 leaf_id, graph)
//! graph? fallback (if flag bit1)
//! u64    fnv1a of everything above
//! ```
//!
//! Deserialization validates every structural invariant (CSR monotonicity,
//! parallel array lengths, label ranges, checksum) and fails with
//! [`GraphExError::Corrupt`] rather than panicking — corrupt model files are
//! an expected operational failure, not a bug.

use crate::alignment::Alignment;
use crate::error::{GraphExError, Result};
use crate::leaf_graph::LeafGraph;
use crate::model::GraphExModel;
use crate::types::LeafId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use graphex_textkit::{FxHashMap, Vocab};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"GEXM";
const VERSION: u32 = 1;

/// Serializes `model` to an owned byte buffer.
pub fn to_bytes(model: &GraphExModel) -> Bytes {
    let mut buf = BytesMut::with_capacity(1024);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    let mut flags = 0u8;
    if model.stemming {
        flags |= 1;
    }
    if model.fallback.is_some() {
        flags |= 2;
    }
    buf.put_u8(flags);
    buf.put_u8(match model.alignment {
        Alignment::Lta => 0,
        Alignment::Wmr => 1,
        Alignment::Jac => 2,
    });
    put_vocab(&mut buf, &model.tokens);
    put_vocab(&mut buf, &model.keyphrases);

    // Deterministic leaf order.
    let mut leaf_ids: Vec<LeafId> = model.leaves.keys().copied().collect();
    leaf_ids.sort_unstable();
    buf.put_u32_le(leaf_ids.len() as u32);
    for leaf in leaf_ids {
        buf.put_u32_le(leaf.0);
        put_graph(&mut buf, &model.leaves[&leaf]);
    }
    if let Some(fb) = &model.fallback {
        put_graph(&mut buf, fb);
    }
    let checksum = fnv1a(&buf);
    buf.put_u64_le(checksum);
    buf.freeze()
}

/// Parses a model from bytes.
pub fn from_bytes(data: &[u8]) -> Result<GraphExModel> {
    if data.len() < MAGIC.len() + 4 + 2 + 8 {
        return Err(GraphExError::Corrupt("file too short".into()));
    }
    let (payload, trailer) = data.split_at(data.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    if fnv1a(payload) != stored {
        return Err(GraphExError::Corrupt("checksum mismatch".into()));
    }

    let mut buf = payload;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphExError::Corrupt("bad magic".into()));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(GraphExError::UnsupportedVersion(version));
    }
    let flags = buf.get_u8();
    let stemming = flags & 1 != 0;
    let has_fallback = flags & 2 != 0;
    let alignment = match buf.get_u8() {
        0 => Alignment::Lta,
        1 => Alignment::Wmr,
        2 => Alignment::Jac,
        other => return Err(GraphExError::Corrupt(format!("unknown alignment tag {other}"))),
    };

    let tokens = get_vocab(&mut buf)?;
    let keyphrases = get_vocab(&mut buf)?;

    let num_leaves = checked_count(&mut buf, "leaf count")? as usize;
    let mut leaves: FxHashMap<LeafId, LeafGraph> =
        FxHashMap::with_capacity_and_hasher(num_leaves, Default::default());
    for _ in 0..num_leaves {
        if buf.remaining() < 4 {
            return Err(GraphExError::Corrupt("truncated leaf id".into()));
        }
        let leaf = LeafId(buf.get_u32_le());
        let graph = get_graph(&mut buf, keyphrases.len() as u32)?;
        if leaves.insert(leaf, graph).is_some() {
            return Err(GraphExError::Corrupt(format!("duplicate {leaf}")));
        }
    }
    let fallback = if has_fallback { Some(Box::new(get_graph(&mut buf, keyphrases.len() as u32)?)) } else { None };
    if buf.has_remaining() {
        return Err(GraphExError::Corrupt("trailing bytes after model".into()));
    }

    Ok(GraphExModel {
        tokenizer: GraphExModel::make_tokenizer(stemming),
        tokens,
        keyphrases,
        leaves,
        fallback,
        alignment,
        stemming,
    })
}

/// Writes the model to `path` (buffered).
pub fn save_to(model: &GraphExModel, path: impl AsRef<Path>) -> Result<()> {
    let bytes = to_bytes(model);
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(&bytes)?;
    file.flush()?;
    Ok(())
}

/// Reads a model from `path`.
pub fn load_from(path: impl AsRef<Path>) -> Result<GraphExModel> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut data = Vec::new();
    file.read_to_end(&mut data)?;
    from_bytes(&data)
}

// --- helpers -----------------------------------------------------------

fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

fn put_vocab(buf: &mut BytesMut, vocab: &Vocab) {
    buf.put_u32_le(vocab.len() as u32);
    for (_, s) in vocab.iter() {
        debug_assert!(s.len() <= u16::MAX as usize);
        buf.put_u16_le(s.len() as u16);
        buf.put_slice(s.as_bytes());
    }
}

fn get_vocab(buf: &mut &[u8]) -> Result<Vocab> {
    let count = checked_count(buf, "vocab count")? as usize;
    let mut vocab = Vocab::with_capacity(count);
    for i in 0..count {
        if buf.remaining() < 2 {
            return Err(GraphExError::Corrupt("truncated vocab entry length".into()));
        }
        let len = buf.get_u16_le() as usize;
        if buf.remaining() < len {
            return Err(GraphExError::Corrupt("truncated vocab entry".into()));
        }
        let (head, rest) = buf.split_at(len);
        let s = std::str::from_utf8(head)
            .map_err(|_| GraphExError::Corrupt("vocab entry is not utf-8".into()))?;
        let id = vocab.intern(s);
        if id as usize != i {
            return Err(GraphExError::Corrupt("duplicate vocab entry".into()));
        }
        *buf = rest;
    }
    Ok(vocab)
}

fn put_graph(buf: &mut BytesMut, graph: &LeafGraph) {
    put_u32s(buf, graph.row_tokens());
    let (offsets, targets) = graph.csr_parts();
    put_u32s(buf, offsets);
    put_u32s(buf, targets);
    put_u32s(buf, graph.labels());
    buf.put_u32_le(graph.label_lens().len() as u32);
    for &l in graph.label_lens() {
        buf.put_u16_le(l);
    }
    put_u32s(buf, graph.searches());
    put_u32s(buf, graph.recalls());
}

fn get_graph(buf: &mut &[u8], num_keyphrases: u32) -> Result<LeafGraph> {
    let row_tokens = get_u32s(buf, "row tokens")?;
    let offsets = get_u32s(buf, "csr offsets")?;
    let targets = get_u32s(buf, "csr targets")?;
    let labels = get_u32s(buf, "labels")?;
    if labels.iter().any(|&kp| kp >= num_keyphrases) {
        return Err(GraphExError::Corrupt("label references unknown keyphrase".into()));
    }
    let n = checked_count(buf, "label_len count")? as usize;
    if buf.remaining() < n * 2 {
        return Err(GraphExError::Corrupt("truncated label_len array".into()));
    }
    let mut label_len = Vec::with_capacity(n);
    for _ in 0..n {
        label_len.push(buf.get_u16_le());
    }
    let search = get_u32s(buf, "search counts")?;
    let recall = get_u32s(buf, "recall counts")?;
    LeafGraph::from_serialized(row_tokens, offsets, targets, labels, label_len, search, recall)
        .map_err(GraphExError::Corrupt)
}

fn put_u32s(buf: &mut BytesMut, vals: &[u32]) {
    buf.put_u32_le(vals.len() as u32);
    for &v in vals {
        buf.put_u32_le(v);
    }
}

fn get_u32s(buf: &mut &[u8], what: &str) -> Result<Vec<u32>> {
    let count = checked_count(buf, what)? as usize;
    if buf.remaining() < count * 4 {
        return Err(GraphExError::Corrupt(format!("truncated {what}")));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(buf.get_u32_le());
    }
    Ok(out)
}

fn checked_count(buf: &mut &[u8], what: &str) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(GraphExError::Corrupt(format!("truncated {what}")));
    }
    let count = buf.get_u32_le();
    // Guard against absurd counts from corrupt length fields: the count
    // cannot exceed the remaining bytes (every element is ≥ 1 byte).
    if count as usize > buf.remaining() * 8 {
        return Err(GraphExError::Corrupt(format!("implausible {what}: {count}")));
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphExBuilder, GraphExConfig};
    use crate::types::KeyphraseRecord;

    fn sample_model() -> GraphExModel {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        GraphExBuilder::new(config)
            .add_records(vec![
                KeyphraseRecord::new("audeze maxwell", LeafId(7), 900, 120),
                KeyphraseRecord::new("gaming headphones xbox", LeafId(7), 800, 700),
                KeyphraseRecord::new("usb c charger", LeafId(9), 500, 50),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn roundtrip_preserves_behavior() {
        let model = sample_model();
        let bytes = to_bytes(&model);
        let restored = from_bytes(&bytes).unwrap();
        for (title, leaf) in [
            ("audeze maxwell gaming headphones xbox", LeafId(7)),
            ("usb c wall charger", LeafId(9)),
            ("anything unknown", LeafId(12345)),
        ] {
            let mut scratch = crate::Scratch::new();
            let req = crate::InferRequest::new(title, leaf).k(10);
            let a = model.infer_request(&req, &mut scratch).predictions;
            let b = restored.infer_request(&req, &mut scratch).predictions;
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(model.keyphrase_text(x.keyphrase), restored.keyphrase_text(y.keyphrase));
                assert_eq!((x.matched, x.label_len, x.search_count), (y.matched, y.label_len, y.search_count));
            }
        }
        assert_eq!(model.alignment(), restored.alignment());
        assert_eq!(model.stemming(), restored.stemming());
        assert_eq!(model.has_fallback(), restored.has_fallback());
    }

    #[test]
    fn file_roundtrip() {
        let model = sample_model();
        let dir = std::env::temp_dir().join("graphex-serialize-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.gexm");
        save_to(&model, &path).unwrap();
        let restored = load_from(&path).unwrap();
        assert_eq!(restored.num_keyphrases(), model.num_keyphrases());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detects_truncation() {
        let bytes = to_bytes(&sample_model());
        for cut in [0, 3, 10, bytes.len() / 2, bytes.len() - 1] {
            let res = from_bytes(&bytes[..cut]);
            assert!(res.is_err(), "truncation at {cut} not detected");
        }
    }

    #[test]
    fn detects_bitflips() {
        let bytes = to_bytes(&sample_model()).to_vec();
        // Flip a byte in the middle: checksum must catch it.
        for pos in [8, bytes.len() / 3, bytes.len() / 2] {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0xFF;
            assert!(
                matches!(from_bytes(&corrupted), Err(GraphExError::Corrupt(_))),
                "bitflip at {pos} not detected"
            );
        }
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        let bytes = to_bytes(&sample_model()).to_vec();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        // checksum catches it first; rewrite checksum to isolate magic check
        let n = wrong_magic.len();
        let sum = fnv1a(&wrong_magic[..n - 8]);
        wrong_magic[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(from_bytes(&wrong_magic), Err(GraphExError::Corrupt(_))));

        let mut wrong_version = bytes;
        wrong_version[4] = 99;
        let n = wrong_version.len();
        let sum = fnv1a(&wrong_version[..n - 8]);
        wrong_version[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(from_bytes(&wrong_version), Err(GraphExError::UnsupportedVersion(99))));
    }

    #[test]
    fn size_bytes_is_serialized_length() {
        let model = sample_model();
        assert_eq!(model.size_bytes(), to_bytes(&model).len());
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let res = load_from("/nonexistent/graphex/model.gexm");
        assert!(matches!(res, Err(GraphExError::Io(_))));
    }
}

//! Core identifier and record types shared across the workspace.

/// Leaf category id (the lowest-level product categorization, Sec. III-B).
///
/// Leaf ids are assumed unique within (and, at eBay, across) meta categories;
/// GraphEx keys its per-leaf graphs by this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LeafId(pub u32);

impl std::fmt::Display for LeafId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "leaf#{}", self.0)
    }
}

/// Global id of a keyphrase in a [`crate::GraphExModel`]'s keyphrase table.
///
/// Dense, assigned in construction order; resolves back to text via
/// [`crate::GraphExModel::keyphrase_text`].
pub type KeyphraseId = u32;

/// One curated keyphrase row as produced by the search-log aggregation
/// pipeline (Sec. III-B): the query text, the leaf category Cassini assigned
/// to it, and its Search/Recall counts.
///
/// *Search count* `S` — how many times buyers queried the phrase (head
/// keyphrases have large `S`). *Recall count* `R` — how many items the search
/// engine recalls for it (small `R` means less competition per item).
/// Absolute values don't matter, only their order (the paper notes a rank
/// works equally well).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyphraseRecord {
    pub text: String,
    pub leaf: LeafId,
    pub search_count: u32,
    pub recall_count: u32,
}

impl KeyphraseRecord {
    pub fn new(text: impl Into<String>, leaf: LeafId, search_count: u32, recall_count: u32) -> Self {
        Self { text: text.into(), leaf, search_count, recall_count }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_id_display() {
        assert_eq!(LeafId(42).to_string(), "leaf#42");
    }

    #[test]
    fn record_constructor() {
        let r = KeyphraseRecord::new("gaming headphones", LeafId(1), 10, 5);
        assert_eq!(r.text, "gaming headphones");
        assert_eq!(r.leaf, LeafId(1));
        assert_eq!((r.search_count, r.recall_count), (10, 5));
    }
}

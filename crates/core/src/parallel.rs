//! Multithreaded batch inference (paper Sec. IV-A / IV-H).
//!
//! GraphEx "employs coarse-grained multithreading, assigning each input's
//! inference to an individual thread". We chunk the request slice across
//! `crossbeam` scoped threads; each thread owns one [`Scratch`], so the
//! steady state does no cross-thread synchronization and no allocation
//! beyond the result vectors.

use crate::inference::{InferenceParams, Prediction, Scratch};
use crate::model::GraphExModel;
use crate::types::LeafId;

/// One inference request in a batch.
#[derive(Debug, Clone, Copy)]
pub struct InferRequest<'a> {
    pub title: &'a str,
    pub leaf: LeafId,
}

impl<'a> InferRequest<'a> {
    pub fn new(title: &'a str, leaf: LeafId) -> Self {
        Self { title, leaf }
    }
}

/// Runs inference for every request, in order, using up to `num_threads`
/// worker threads (`0` = all available cores).
///
/// Unknown-leaf requests yield an empty prediction list (a batch must not
/// abort because one item is in a cold category — mirrors production
/// behaviour where such items simply get no recommendations from this
/// source).
pub fn batch_infer(
    model: &GraphExModel,
    requests: &[InferRequest<'_>],
    params: &InferenceParams,
    num_threads: usize,
) -> Vec<Vec<Prediction>> {
    let threads = effective_threads(num_threads, requests.len());
    if threads <= 1 {
        let mut scratch = Scratch::new();
        return requests
            .iter()
            .map(|r| model.infer(r.title, r.leaf, params, &mut scratch).unwrap_or_default())
            .collect();
    }

    let mut results: Vec<Vec<Prediction>> = vec![Vec::new(); requests.len()];
    let chunk = requests.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (req_chunk, out_chunk) in requests.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                let mut scratch = Scratch::new();
                for (req, out) in req_chunk.iter().zip(out_chunk.iter_mut()) {
                    *out = model.infer(req.title, req.leaf, params, &mut scratch).unwrap_or_default();
                }
            });
        }
    })
    .expect("batch inference worker panicked");
    results
}

fn effective_threads(requested: usize, work_items: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = if requested == 0 { hw } else { requested };
    threads.min(work_items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphExBuilder, GraphExConfig};
    use crate::types::KeyphraseRecord;

    fn model() -> GraphExModel {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        config.build_meta_fallback = false;
        GraphExBuilder::new(config)
            .add_records((0..50).map(|i| {
                KeyphraseRecord::new(format!("brand{i} model{i} widget"), LeafId(i % 5), 100 + i, 10 + i)
            }))
            .build()
            .unwrap()
    }

    #[test]
    fn batch_matches_sequential() {
        let model = model();
        let titles: Vec<String> =
            (0..40).map(|i| format!("brand{i} model{i} widget deluxe edition")).collect();
        let requests: Vec<InferRequest> =
            titles.iter().enumerate().map(|(i, t)| InferRequest::new(t, LeafId(i as u32 % 5))).collect();
        let params = InferenceParams::with_k(10);
        let seq = batch_infer(&model, &requests, &params, 1);
        let par = batch_infer(&model, &requests, &params, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            let ka: Vec<u32> = a.iter().map(|p| p.keyphrase).collect();
            let kb: Vec<u32> = b.iter().map(|p| p.keyphrase).collect();
            assert_eq!(ka, kb);
        }
    }

    #[test]
    fn unknown_leaf_in_batch_is_empty_not_fatal() {
        let model = model();
        let requests = [InferRequest::new("brand1 model1 widget", LeafId(1)), InferRequest::new("anything", LeafId(999))];
        let out = batch_infer(&model, &requests, &InferenceParams::with_k(5), 2);
        assert!(!out[0].is_empty());
        assert!(out[1].is_empty());
    }

    #[test]
    fn empty_batch() {
        let model = model();
        let out = batch_infer(&model, &[], &InferenceParams::with_k(5), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let model = model();
        let requests = [InferRequest::new("brand1 model1 widget", LeafId(1))];
        let out = batch_infer(&model, &requests, &InferenceParams::with_k(5), 0);
        assert_eq!(out.len(), 1);
    }
}

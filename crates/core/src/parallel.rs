//! Multithreaded batch inference (paper Sec. IV-A / IV-H).
//!
//! GraphEx "employs coarse-grained multithreading, assigning each input's
//! inference to an individual thread". We chunk the request slice across
//! `crossbeam` scoped threads; each thread checks one
//! [`crate::Scratch`] out of a [`ScratchPool`], so the steady state
//! does no cross-thread
//! synchronization and no allocation beyond the result vectors.
//!
//! Requests are full [`InferRequest`] envelopes: every item in a batch can
//! carry its own `k`, alignment override, and resolve-texts flag. Results
//! come back as [`InferResponse`]s in request order, each tagged with the
//! [`crate::Outcome`] that explains it — a batch never aborts because one
//! item is in a cold category; that item simply reports `UnknownLeaf`.

use crate::model::GraphExModel;
use crate::service::{InferRequest, InferResponse, ScratchPool};

/// Runs inference for every request, in order, using up to `num_threads`
/// worker threads (`0` = all available cores).
///
/// Per-request parameters are honoured; the result is identical to calling
/// [`GraphExModel::infer_request`] sequentially (pinned by a property test
/// in `crates/core/tests/service_props.rs`). Prefer
/// [`crate::Engine::infer_batch`] when calling repeatedly — the engine's
/// pool keeps scratch buffers warm across batches.
pub fn batch_infer(
    model: &GraphExModel,
    requests: &[InferRequest<'_>],
    num_threads: usize,
) -> Vec<InferResponse> {
    batch_infer_pooled(model, requests, num_threads, &ScratchPool::new())
}

/// [`batch_infer`] drawing scratches from an existing pool (the
/// [`crate::Engine`] path).
pub(crate) fn batch_infer_pooled(
    model: &GraphExModel,
    requests: &[InferRequest<'_>],
    num_threads: usize,
    pool: &ScratchPool,
) -> Vec<InferResponse> {
    let threads = effective_threads(num_threads, requests.len());
    if threads <= 1 {
        let mut scratch = pool.take();
        let results = requests.iter().map(|r| model.infer_request(r, &mut scratch)).collect();
        pool.give(scratch);
        return results;
    }

    let mut results: Vec<Option<InferResponse>> = (0..requests.len()).map(|_| None).collect();
    let chunk = requests.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (req_chunk, out_chunk) in requests.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                let mut scratch = pool.take();
                for (req, out) in req_chunk.iter().zip(out_chunk.iter_mut()) {
                    *out = Some(model.infer_request(req, &mut scratch));
                }
                pool.give(scratch);
            });
        }
    })
    .expect("batch inference worker panicked");
    results.into_iter().map(|r| r.expect("every request answered")).collect()
}

fn effective_threads(requested: usize, work_items: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = if requested == 0 { hw } else { requested };
    threads.min(work_items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphExBuilder, GraphExConfig};
    use crate::service::Outcome;
    use crate::types::{KeyphraseRecord, LeafId};

    fn model() -> GraphExModel {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        config.build_meta_fallback = false;
        GraphExBuilder::new(config)
            .add_records((0..50).map(|i| {
                KeyphraseRecord::new(format!("brand{i} model{i} widget"), LeafId(i % 5), 100 + i, 10 + i)
            }))
            .build()
            .unwrap()
    }

    #[test]
    fn batch_matches_sequential() {
        let model = model();
        let titles: Vec<String> =
            (0..40).map(|i| format!("brand{i} model{i} widget deluxe edition")).collect();
        let requests: Vec<InferRequest<'_>> = titles
            .iter()
            .enumerate()
            .map(|(i, t)| InferRequest::new(t, LeafId(i as u32 % 5)).k(10))
            .collect();
        let seq = batch_infer(&model, &requests, 1);
        let par = batch_infer(&model, &requests, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn per_request_params_are_honoured() {
        let model = model();
        let title = "brand1 model1 widget deluxe";
        let requests = [
            InferRequest::new(title, LeafId(1)).k(1),
            InferRequest::new(title, LeafId(1)).k(10).resolve_texts(true),
        ];
        let out = batch_infer(&model, &requests, 2);
        assert_eq!(out[0].predictions.len(), 1);
        assert!(out[1].predictions.len() > 1);
        assert!(out[0].texts.is_empty());
        assert_eq!(out[1].texts.len(), out[1].predictions.len());
    }

    #[test]
    fn unknown_leaf_in_batch_is_reported_not_fatal() {
        let model = model();
        let requests = [
            InferRequest::new("brand1 model1 widget", LeafId(1)).k(5),
            InferRequest::new("anything", LeafId(999)).k(5),
        ];
        let out = batch_infer(&model, &requests, 2);
        assert_eq!(out[0].outcome, Outcome::ExactLeaf);
        assert_eq!(out[1].outcome, Outcome::UnknownLeaf);
        assert!(out[1].is_empty());
    }

    #[test]
    fn empty_batch() {
        let model = model();
        let out = batch_infer(&model, &[], 0);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let model = model();
        let requests = [InferRequest::new("brand1 model1 widget", LeafId(1)).k(5)];
        let out = batch_infer(&model, &requests, 0);
        assert_eq!(out.len(), 1);
    }
}

//! Candidate pruning and ranking (paper Sec. III-E2 and III-F).
//!
//! Two pure, independently-testable pieces:
//!
//! * [`count_group_threshold`] — the III-F optimization: group candidates by
//!   their redundancy count `c`, take groups from the largest `c` downward
//!   until the requested number of predictions is covered, and keep the
//!   entire threshold group.
//! * [`sort_predictions`] — the ranking step: non-increasing alignment score
//!   with exact fraction comparison; ties prefer higher Search count, then
//!   lower Recall count (more buyers, fewer competing items → higher click
//!   probability per item), then keyphrase id for determinism.

use crate::alignment::Alignment;
use crate::inference::Prediction;

/// Given `group_sizes[c]` = number of candidate labels whose common-word
/// count is exactly `c` (index 0 unused), returns the smallest count `c*`
/// such that all labels with `count >= c*` number at least `k`.
///
/// If even including every group can't reach `k`, returns 1 (take
/// everything). `group_sizes` may be any length; counts beyond the title's
/// distinct token count are structurally zero.
pub fn count_group_threshold(group_sizes: &[u32], k: usize) -> u32 {
    let mut total: u64 = 0;
    for c in (1..group_sizes.len()).rev() {
        total += u64::from(group_sizes[c]);
        if total >= k as u64 {
            return c as u32;
        }
    }
    1
}

/// Sorts predictions in ranking order under `alignment`:
/// score desc → search count desc → recall count asc → keyphrase id asc.
pub fn sort_predictions(preds: &mut [Prediction], alignment: Alignment, title_len: u32) {
    preds.sort_unstable_by(|a, b| {
        alignment
            .cmp_scores(
                (u32::from(b.matched), u32::from(b.label_len)),
                (u32::from(a.matched), u32::from(a.label_len)),
                title_len,
            )
            .then_with(|| b.search_count.cmp(&a.search_count))
            .then_with(|| a.recall_count.cmp(&b.recall_count))
            .then_with(|| a.keyphrase.cmp(&b.keyphrase))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(kp: u32, matched: u16, len: u16, s: u32, r: u32) -> Prediction {
        Prediction { keyphrase: kp, matched, label_len: len, search_count: s, recall_count: r, title_len: 6 }
    }

    #[test]
    fn threshold_takes_largest_groups_first() {
        // counts: 3 labels with c=1, 2 with c=2, 1 with c=3.
        let sizes = [0, 3, 2, 1];
        assert_eq!(count_group_threshold(&sizes, 1), 3);
        assert_eq!(count_group_threshold(&sizes, 2), 2);
        assert_eq!(count_group_threshold(&sizes, 3), 2); // whole c=2 group
        assert_eq!(count_group_threshold(&sizes, 4), 1);
        assert_eq!(count_group_threshold(&sizes, 100), 1); // not enough: take all
    }

    #[test]
    fn threshold_empty_histogram() {
        assert_eq!(count_group_threshold(&[], 5), 1);
        assert_eq!(count_group_threshold(&[0, 0, 0], 5), 1);
    }

    #[test]
    fn ranking_order_lta_then_search_then_recall() {
        // Figure 3 example after enumeration of the sample title:
        // counts 2,2,3,2,1 for labels 10..14.
        let mut preds = vec![
            pred(10, 2, 2, 900, 120), // LTA 2/1 = 2.0
            pred(11, 2, 2, 450, 300), // LTA 2.0, lower search
            pred(12, 3, 3, 800, 700), // LTA 3/1 = 3.0  ← top
            pred(13, 2, 3, 650, 800), // LTA 2/2 = 1.0
            pred(14, 1, 3, 300, 900), // LTA 1/3
        ];
        sort_predictions(&mut preds, Alignment::Lta, 6);
        let order: Vec<u32> = preds.iter().map(|p| p.keyphrase).collect();
        assert_eq!(order, [12, 10, 11, 13, 14]);
    }

    #[test]
    fn tie_break_prefers_low_recall() {
        let mut preds = vec![pred(1, 2, 3, 500, 900), pred(2, 2, 3, 500, 100)];
        sort_predictions(&mut preds, Alignment::Lta, 5);
        assert_eq!(preds[0].keyphrase, 2);
    }

    #[test]
    fn deterministic_on_full_tie() {
        let mut preds = vec![pred(9, 1, 2, 5, 5), pred(3, 1, 2, 5, 5)];
        sort_predictions(&mut preds, Alignment::Lta, 5);
        assert_eq!(preds[0].keyphrase, 3);
    }

    #[test]
    fn wmr_vs_lta_disagree_on_partial_match() {
        // label A: c=2,|l|=2 → LTA 2.0, WMR 1.0
        // label B: c=3,|l|=4 → LTA 1.5, WMR 0.75
        // label C: c=4,|l|=6 → LTA 4/3, WMR 0.666
        let mut by_lta = vec![pred(1, 2, 2, 0, 0), pred(2, 3, 4, 0, 0), pred(3, 4, 6, 0, 0)];
        let mut by_wmr = by_lta.clone();
        sort_predictions(&mut by_lta, Alignment::Lta, 8);
        sort_predictions(&mut by_wmr, Alignment::Wmr, 8);
        assert_eq!(by_lta[0].keyphrase, 1);
        assert_eq!(by_wmr[0].keyphrase, 1);
        // JAC prefers higher coverage of the union:
        let mut by_jac = by_lta.clone();
        sort_predictions(&mut by_jac, Alignment::Jac, 8);
        // JAC: A=2/8, B=3/9, C=4/10 → C first.
        assert_eq!(by_jac[0].keyphrase, 3);
    }
}

//! # GraphEx — graph-based extraction for advertiser keyphrase recommendation
//!
//! Rust implementation of *GraphEx: A Graph-based Extraction Method for
//! Advertiser Keyphrase Recommendation* (Mishra et al., ICDE 2025,
//! arXiv:2409.03140).
//!
//! GraphEx recommends keyphrases (buyer search queries an advertiser can bid
//! on) for an item given only its **title** and **leaf category**. It solves
//! the constrained permutation problem of Sec. III-A: generate exactly those
//! permutations of title tokens that are *valid, actively-searched buyer
//! queries*, without being limited by token adjacency or presence order.
//!
//! The method has two phases:
//!
//! 1. **Construction** ([`GraphExBuilder`]): for every leaf category, build a
//!    bipartite graph from curated keyphrases — words on one side, keyphrases
//!    on the other, an edge whenever the word occurs in the keyphrase. The
//!    graph is stored in CSR; words and keyphrases are interned `u32`s.
//!    No weights, no hyper-parameters, no epochs: construction is a single
//!    pass and runs in seconds (paper: "under 1 minute" for eBay-scale
//!    categories).
//! 2. **Inference** ([`GraphExModel::infer`]): walk the adjacency of each
//!    title token, count per-keyphrase hits with a generation-stamped count
//!    array (the `DC(·)` de-duplicate-and-count of Algorithm 1), prune
//!    candidates by count group, then rank by **Label-Title Alignment**
//!    `LTA(l, c) = c / (|l| − c + 1)` with search-count / recall-count
//!    tie-breaks.
//!
//! ```
//! use graphex_core::{
//!     Engine, GraphExBuilder, GraphExConfig, InferRequest, KeyphraseRecord, LeafId, Outcome,
//! };
//!
//! let leaf = LeafId(7);
//! let records = vec![
//!     KeyphraseRecord::new("audeze maxwell", leaf, 900, 120),
//!     KeyphraseRecord::new("audeze headphones", leaf, 450, 300),
//!     KeyphraseRecord::new("gaming headphones xbox", leaf, 800, 700),
//!     KeyphraseRecord::new("wireless headphones xbox", leaf, 650, 800),
//!     KeyphraseRecord::new("bluetooth wireless headphones", leaf, 300, 900),
//! ];
//! let model = GraphExBuilder::new(GraphExConfig::default())
//!     .add_records(records)
//!     .build()
//!     .unwrap();
//!
//! // The Engine is the in-process inference service: shared model +
//! // pooled scratches, one typed request/response envelope per call.
//! let engine = Engine::from_model(model);
//! let request = InferRequest::new("Audeze Maxwell gaming headphones for Xbox", leaf)
//!     .k(3)
//!     .resolve_texts(true);
//! let response = engine.infer(&request);
//! // The outcome says *why* the answer is what it is: an exact-leaf hit.
//! assert_eq!(response.outcome, Outcome::ExactLeaf);
//! // "gaming headphones xbox" is fully matched: LTA 3/1 = 3.0 ranks first;
//! // "audeze maxwell" (LTA 2/1) beats "audeze headphones" on search count.
//! assert_eq!(response.texts, ["gaming headphones xbox", "audeze maxwell", "audeze headphones"]);
//! ```
//!
//! The crate is CPU-only, allocation-free per inference at steady state
//! (pooled [`Scratch`] via [`Engine`]/[`Session`]), and scales batch
//! inference across cores with [`Engine::infer_batch`] /
//! [`parallel::batch_infer`] — per-request `k` and alignment included.
//! Every frontend (store-backed serving, CLI, evaluation, benches) speaks
//! the same [`KeyphraseService`] trait.

pub mod alignment;
pub mod assembly;
pub mod builder;
pub mod csr;
pub mod curation;
pub mod diff;
pub mod error;
pub mod explain;
pub mod inference;
pub mod leaf_graph;
pub mod model;
pub mod overlay;
pub mod parallel;
pub mod ranking;
pub mod serialize;
pub mod service;
pub mod storage;
pub mod trace;
pub mod types;

pub use alignment::Alignment;
pub use builder::{GraphExBuilder, GraphExConfig};
pub use curation::{CurationConfig, CurationStats};
pub use error::GraphExError;
pub use explain::ExplainedPrediction;
pub use inference::{InferenceParams, Prediction, Scratch};
pub use model::{GraphExModel, ModelStats};
pub use overlay::{OverlayLeafStats, OverlayView};
pub use serialize::LoadMode;
pub use service::{
    Engine, InferRequest, InferResponse, KeyphraseService, Outcome, OutcomeCounts, ScratchPool,
    Session,
};
pub use trace::{SpanRec, Stage, StageTrace};
pub use types::{KeyphraseId, KeyphraseRecord, LeafId};

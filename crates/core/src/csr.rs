//! Compressed Sparse Row adjacency.
//!
//! The bipartite word→keyphrase graph of each leaf category is stored in CSR
//! (paper Sec. III-D): row `r` (a word, leaf-local) has its neighbor labels
//! in `targets[offsets[r] .. offsets[r+1]]`. Space is `|X| + |E|` 32-bit
//! words; neighbor traversal is a contiguous slice scan — the property the
//! paper's `O(|T| · d_avg)` inference bound rests on.

use crate::storage::U32Store;

/// Immutable CSR adjacency from `u32` rows to `u32` targets.
///
/// Construction sorts and de-duplicates the edge list exactly as the paper
/// describes ("constructed as tuples, sorted and then de-duplicated"). The
/// two arrays are [`U32Store`]s: owned when built in-process, borrowed
/// zero-copy from the load buffer when deserialized from a `GEXM v2`
/// snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: U32Store,
    targets: U32Store,
}

impl Csr {
    /// Builds a CSR over `num_rows` rows from an edge list. Edges are sorted
    /// and de-duplicated; `edges` is consumed as the scratch buffer.
    ///
    /// # Panics
    /// Panics if an edge references `row >= num_rows` (construction-time
    /// programming error, not a data error).
    pub fn from_edges(num_rows: u32, mut edges: Vec<(u32, u32)>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        let mut offsets = vec![0u32; num_rows as usize + 1];
        for &(row, _) in &edges {
            assert!(row < num_rows, "edge row {row} out of bounds ({num_rows} rows)");
            offsets[row as usize + 1] += 1;
        }
        for i in 0..num_rows as usize {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<u32> = edges.iter().map(|&(_, t)| t).collect();
        Self { offsets: offsets.into(), targets: targets.into() }
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of (deduplicated) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Neighbors of `row` as a sorted slice. Empty slice for out-of-range
    /// rows (callers look rows up through a word index first, so this is a
    /// defensive default rather than a hot-path branch).
    #[inline]
    pub fn neighbors(&self, row: u32) -> &[u32] {
        let r = row as usize;
        if r + 1 >= self.offsets.len() {
            return &[];
        }
        &self.targets[self.offsets[r] as usize..self.offsets[r + 1] as usize]
    }

    /// Degree of `row`.
    #[inline]
    pub fn degree(&self, row: u32) -> u32 {
        let r = row as usize;
        if r + 1 >= self.offsets.len() {
            return 0;
        }
        self.offsets[r + 1] - self.offsets[r]
    }

    /// Average degree `|E| / |X|` (the paper's `d_avg`).
    pub fn avg_degree(&self) -> f64 {
        if self.num_rows() == 0 {
            return 0.0;
        }
        self.num_edges() as f64 / f64::from(self.num_rows())
    }

    /// Iterates all `(row, target)` edges in row order.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_rows()).flat_map(move |r| self.neighbors(r).iter().map(move |&t| (r, t)))
    }

    /// Heap bytes used (paper Fig. 6b accounting).
    pub fn heap_bytes(&self) -> usize {
        (self.offsets.len() + self.targets.len()) * std::mem::size_of::<u32>()
    }

    /// Raw parts for serialization.
    pub(crate) fn as_parts(&self) -> (&[u32], &[u32]) {
        (&self.offsets, &self.targets)
    }

    /// Rebuilds from raw (store-typed) parts, validating CSR invariants
    /// (monotone offsets, first 0 / last == |targets|). Used by
    /// deserialization, hence `Result`; the zero-copy path hands in
    /// borrowed views and validation reads but never copies.
    pub(crate) fn from_stores(offsets: U32Store, targets: U32Store) -> Result<Self, String> {
        if offsets.is_empty() {
            return Err("csr: empty offsets".into());
        }
        if offsets[0] != 0 {
            return Err("csr: offsets[0] != 0".into());
        }
        if *offsets.last().unwrap() as usize != targets.len() {
            return Err("csr: last offset != #targets".into());
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("csr: offsets not monotone".into());
        }
        Ok(Self { offsets, targets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 3 rows; duplicate + unsorted edges on purpose.
        Csr::from_edges(3, vec![(2, 1), (0, 5), (0, 3), (0, 5), (2, 0)])
    }

    #[test]
    fn builds_sorted_deduped() {
        let csr = sample();
        assert_eq!(csr.num_rows(), 3);
        assert_eq!(csr.num_edges(), 4);
        assert_eq!(csr.neighbors(0), &[3, 5]);
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
        assert_eq!(csr.neighbors(2), &[0, 1]);
    }

    #[test]
    fn degrees_and_avg() {
        let csr = sample();
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(1), 0);
        assert_eq!(csr.degree(2), 2);
        assert!((csr.avg_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_row_is_empty() {
        let csr = sample();
        assert_eq!(csr.neighbors(99), &[] as &[u32]);
        assert_eq!(csr.degree(99), 0);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, vec![]);
        assert_eq!(csr.num_rows(), 0);
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(csr.avg_degree(), 0.0);
        assert_eq!(csr.edges().count(), 0);
    }

    #[test]
    fn edges_iterator_roundtrip() {
        let csr = sample();
        let edges: Vec<(u32, u32)> = csr.edges().collect();
        assert_eq!(edges, vec![(0, 3), (0, 5), (2, 0), (2, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let _ = Csr::from_edges(1, vec![(1, 0)]);
    }

    #[test]
    fn from_parts_validation() {
        let parts = |o: Vec<u32>, t: Vec<u32>| Csr::from_stores(o.into(), t.into());
        assert!(parts(vec![], vec![]).is_err());
        assert!(parts(vec![1, 2], vec![0, 0]).is_err()); // first != 0
        assert!(parts(vec![0, 3], vec![7]).is_err()); // last != len
        assert!(parts(vec![0, 2, 1], vec![9]).is_err()); // not monotone
        let ok = parts(vec![0, 1, 2], vec![4, 9]).unwrap();
        assert_eq!(ok.neighbors(1), &[9]);
    }

    #[test]
    fn heap_bytes_is_linear() {
        let csr = sample();
        assert_eq!(csr.heap_bytes(), (4 + 4) * 4);
    }
}

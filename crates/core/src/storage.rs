//! Zero-copy array storage for loaded models.
//!
//! The `GEXM v2` snapshot format lays every CSR/label/score array out as
//! an 8-byte-aligned little-endian section so the loader can *borrow* the
//! arrays straight out of the load buffer instead of copying them. This
//! module supplies the three pieces that makes sound:
//!
//! * [`AlignedBuf`] — a byte buffer whose base pointer is 8-byte aligned
//!   (backed by a `Vec<u64>`), so a section at an 8-aligned file offset is
//!   8-aligned in memory too. Model files are read directly into one.
//! * [`PodView`] — a typed `&[T]` view over a refcounted [`Bytes`] slice,
//!   validated for alignment and length at construction. Cloning is O(1)
//!   and shares the underlying buffer.
//! * [`U32Store`] / [`U16Store`] — either an owned boxed slice (built
//!   models, v1 loads) or a borrowed [`PodView`] (v2 loads). The graph
//!   structures store these and deref to plain slices, so inference code
//!   is oblivious to where an array lives.
//!
//! The raw little-endian byte reinterpretation assumes a little-endian
//! host, which every supported target is; [`PodView::new`] rejects
//! misaligned or odd-length sections with `None` rather than UB.

use bytes::Bytes;
use std::marker::PhantomData;
use std::ops::Deref;

/// A byte buffer guaranteed to start on an 8-byte boundary.
///
/// Backed by a `Vec<u64>` (whose allocation is 8-aligned by construction)
/// exposing the first `len` bytes. This is the owner type behind every
/// zero-copy model load: wrap it in [`Bytes::from_owner`] and slice.
#[derive(Debug, Clone)]
pub struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    /// An uninitialized (zeroed) buffer of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        Self { words: vec![0u64; len.div_ceil(8)], len }
    }

    /// Copies `data` into a fresh aligned buffer.
    pub fn copy_from(data: &[u8]) -> Self {
        let mut buf = Self::zeroed(data.len());
        buf.as_mut_slice().copy_from_slice(data);
        buf
    }

    /// Reads `len` bytes from `reader` straight into aligned storage (the
    /// file-load path: no intermediate unaligned `Vec<u8>`).
    pub fn read_exact(reader: &mut impl std::io::Read, len: usize) -> std::io::Result<Self> {
        let mut buf = Self::zeroed(len);
        reader.read_exact(buf.as_mut_slice())?;
        Ok(buf)
    }

    /// The buffer contents.
    pub fn as_slice(&self) -> &[u8] {
        // Sound: u64 -> u8 loosens alignment, len never exceeds the
        // allocation (words.len() * 8 >= len by construction).
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<u8>(), self.len) }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl AsRef<[u8]> for AlignedBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Marker for element types safe to reinterpret from little-endian bytes.
///
/// Sealed: only the primitive integer widths the GEXM format stores.
pub trait Pod: Copy + private::Sealed + 'static {}

mod private {
    pub trait Sealed {}
    impl Sealed for u16 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

impl Pod for u16 {}
impl Pod for u32 {}
impl Pod for u64 {}

/// A typed, refcounted `&[T]` view over a [`Bytes`] slice.
///
/// Constructed only through [`PodView::new`], which checks that the byte
/// range is a whole number of elements and that its base pointer satisfies
/// `T`'s alignment — the two conditions that make the pointer cast sound.
/// The base pointer and element count are cached at construction (the
/// owner sits pinned behind the `Bytes`' `Arc`, so the address is
/// stable), keeping `Deref` on the inference hot path a plain
/// `from_raw_parts` with no virtual dispatch through the buffer owner.
/// Cloning shares the buffer (O(1)).
#[derive(Clone)]
pub struct PodView<T: Pod> {
    /// Keep-alive handle for the backing allocation; never re-read on
    /// the hot path.
    _bytes: Bytes,
    ptr: *const T,
    len: usize,
    _elem: PhantomData<T>,
}

// Sound: the view is an immutable window into an allocation owned (and
// pinned) by the refcounted `Bytes`; `T` is a sealed plain-old-data
// integer type with no interior mutability.
unsafe impl<T: Pod> Send for PodView<T> {}
unsafe impl<T: Pod> Sync for PodView<T> {}

impl<T: Pod> PodView<T> {
    /// Wraps `bytes` as a `[T]` view; `None` if the length is not a
    /// multiple of `size_of::<T>()` or the base pointer is misaligned.
    pub fn new(bytes: Bytes) -> Option<Self> {
        let size = std::mem::size_of::<T>();
        if bytes.len() % size != 0 || bytes.as_ptr() as usize % std::mem::align_of::<T>() != 0 {
            return None;
        }
        let (ptr, len) = (bytes.as_ptr().cast::<T>(), bytes.len() / size);
        Some(Self { _bytes: bytes, ptr, len, _elem: PhantomData })
    }

    /// Number of `T` elements.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T: Pod> Deref for PodView<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        // Sound: alignment and whole-element length were verified in
        // `new`, the buffer is immutable and kept alive by `self._bytes`
        // (owner pinned behind an `Arc`, so `ptr` stays valid), and T is
        // a sealed POD integer type (little-endian host assumed, as
        // documented at module level).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<T: Pod> std::fmt::Debug for PodView<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PodView(len {})", self.len())
    }
}

macro_rules! store {
    ($name:ident, $elem:ty, $doc:literal) => {
        #[doc = $doc]
        ///
        /// Derefs to a plain slice either way; `Owned` comes from the
        /// builder and the v1 loader, `View` from the zero-copy v2 loader.
        #[derive(Debug, Clone)]
        pub enum $name {
            Owned(Box<[$elem]>),
            View(PodView<$elem>),
        }

        impl Deref for $name {
            type Target = [$elem];

            #[inline]
            fn deref(&self) -> &[$elem] {
                match self {
                    Self::Owned(b) => b,
                    Self::View(v) => v,
                }
            }
        }

        impl From<Vec<$elem>> for $name {
            fn from(v: Vec<$elem>) -> Self {
                Self::Owned(v.into_boxed_slice())
            }
        }

        impl From<PodView<$elem>> for $name {
            fn from(v: PodView<$elem>) -> Self {
                Self::View(v)
            }
        }

        impl PartialEq for $name {
            fn eq(&self, other: &Self) -> bool {
                **self == **other
            }
        }

        impl Eq for $name {}

        impl $name {
            /// Whether this array borrows from a shared load buffer
            /// (true only for zero-copy v2 views).
            pub fn is_view(&self) -> bool {
                matches!(self, Self::View(_))
            }
        }
    };
}

store!(U32Store, u32, "A `u32` array: owned or borrowed from a load buffer.");
store!(U16Store, u16, "A `u16` array: owned or borrowed from a load buffer.");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_buf_is_aligned_and_sized() {
        for len in [0usize, 1, 7, 8, 9, 4096] {
            let buf = AlignedBuf::zeroed(len);
            assert_eq!(buf.len(), len);
            assert_eq!(buf.as_slice().as_ptr() as usize % 8, 0);
            assert_eq!(buf.is_empty(), len == 0);
        }
    }

    #[test]
    fn copy_from_roundtrips() {
        let data: Vec<u8> = (0..=255).collect();
        let buf = AlignedBuf::copy_from(&data);
        assert_eq!(buf.as_slice(), &data[..]);
    }

    #[test]
    fn read_exact_fills_from_reader() {
        let data: Vec<u8> = (0u8..100).collect();
        let mut cursor = &data[..];
        let buf = AlignedBuf::read_exact(&mut cursor, 100).unwrap();
        assert_eq!(buf.as_slice(), &data[..]);
        let mut short = &data[..10];
        assert!(AlignedBuf::read_exact(&mut short, 100).is_err());
    }

    #[test]
    fn pod_view_reads_little_endian_values() {
        let buf = AlignedBuf::copy_from(&[1, 0, 0, 0, 2, 0, 0, 0]);
        let bytes = Bytes::from_owner(buf);
        let view = PodView::<u32>::new(bytes.clone()).unwrap();
        assert_eq!(&*view, &[1u32, 2]);
        let halves = PodView::<u16>::new(bytes).unwrap();
        assert_eq!(&*halves, &[1u16, 0, 2, 0]);
    }

    #[test]
    fn pod_view_rejects_misalignment_and_ragged_lengths() {
        let buf = AlignedBuf::copy_from(&[0u8; 16]);
        let bytes = Bytes::from_owner(buf);
        // Offset 2 is 2-aligned: fine for u16, misaligned for u32.
        assert!(PodView::<u16>::new(bytes.slice(2..10)).is_some());
        assert!(PodView::<u32>::new(bytes.slice(2..10)).is_none());
        // 7 bytes is not a whole number of u32s.
        assert!(PodView::<u32>::new(bytes.slice(0..7)).is_none());
        // Empty view is fine.
        assert_eq!(PodView::<u32>::new(bytes.slice(8..8)).unwrap().len(), 0);
    }

    #[test]
    fn stores_deref_and_compare_across_variants() {
        let owned = U32Store::from(vec![3u32, 1, 4]);
        let buf = AlignedBuf::copy_from(&[3, 0, 0, 0, 1, 0, 0, 0, 4, 0, 0, 0]);
        let view = U32Store::from(PodView::<u32>::new(Bytes::from_owner(buf)).unwrap());
        assert_eq!(owned, view);
        assert_eq!(&*view, &[3u32, 1, 4]);
        assert!(view.is_view());
        assert!(!owned.is_view());
    }
}

//! # suite — repository-level integration tests and examples
//!
//! This crate carries no library logic of its own; it wires the top-level
//! `tests/` and `examples/` directories (which span every crate in the
//! workspace) into cargo targets, and provides small shared fixtures.

use graphex_core::{GraphExBuilder, GraphExConfig, GraphExModel, KeyphraseRecord, LeafId};
use graphex_marketsim::{CategoryDataset, CategorySpec};

/// The Figure 3 keyphrase set from the paper, as curation-ready records.
pub fn figure3_records() -> (LeafId, Vec<KeyphraseRecord>) {
    let leaf = LeafId(7);
    let records = vec![
        KeyphraseRecord::new("audeze maxwell", leaf, 900, 120),
        KeyphraseRecord::new("audeze headphones", leaf, 450, 300),
        KeyphraseRecord::new("gaming headphones xbox", leaf, 800, 700),
        KeyphraseRecord::new("wireless headphones xbox", leaf, 650, 800),
        KeyphraseRecord::new("bluetooth wireless headphones", leaf, 300, 900),
    ];
    (leaf, records)
}

/// A GraphEx model over the Figure 3 set (no curation threshold).
///
/// This is the paper's canonical worked example: for the title
/// *"Audeze Maxwell gaming headphones for Xbox"*, the fully-matched
/// keyphrase ranks first (LTA 3/1 = 3.0) and the two 2-token matches are
/// ordered by search count.
///
/// ```
/// use graphex_core::{Engine, InferRequest};
/// use graphex_suite::figure3_model;
///
/// let (leaf, model) = figure3_model();
/// let engine = Engine::from_model(model);
/// let request = InferRequest::new("Audeze Maxwell gaming headphones for Xbox", leaf)
///     .k(3)
///     .resolve_texts(true);
/// let response = engine.infer(&request);
/// assert_eq!(response.texts, ["gaming headphones xbox", "audeze maxwell", "audeze headphones"]);
/// ```
pub fn figure3_model() -> (LeafId, GraphExModel) {
    let (leaf, records) = figure3_records();
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 0;
    let model = GraphExBuilder::new(config).add_records(records).build().expect("figure 3 model");
    (leaf, model)
}

/// A small but fully-featured synthetic dataset for integration tests.
pub fn tiny_dataset(seed: u64) -> CategoryDataset {
    CategoryDataset::generate(CategorySpec::tiny(seed))
}

/// A GraphEx model trained on a tiny dataset with a mild threshold.
pub fn tiny_model(ds: &CategoryDataset) -> GraphExModel {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    GraphExBuilder::new(config)
        .add_records(ds.keyphrase_records())
        .build()
        .expect("tiny dataset model")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the paper's Figure 3 ranking end to end: full match first by
    /// LTA, then the two 2-token matches ordered by search count.
    #[test]
    fn figure3_top3_matches_paper() {
        let (leaf, model) = figure3_model();
        let engine = graphex_core::Engine::from_model(model);
        let request = graphex_core::InferRequest::new("Audeze Maxwell gaming headphones for Xbox", leaf)
            .k(3)
            .resolve_texts(true);
        let response = engine.infer(&request);
        assert_eq!(response.outcome, graphex_core::Outcome::ExactLeaf);
        assert_eq!(response.texts, ["gaming headphones xbox", "audeze maxwell", "audeze headphones"]);
    }

    #[test]
    fn fixtures_build() {
        let (leaf, model) = figure3_model();
        assert_eq!(model.num_keyphrases(), 5);
        let mut scratch = graphex_core::Scratch::new();
        let req = graphex_core::InferRequest::new("audeze maxwell", leaf).k(5);
        assert!(!model.infer_request(&req, &mut scratch).is_empty());
        let ds = tiny_dataset(1);
        let model = tiny_model(&ds);
        assert!(model.num_keyphrases() > 0);
    }
}

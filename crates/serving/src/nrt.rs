//! Near-real-time inference service.
//!
//! Paper Sec. IV-H: "NRT serves items on an urgent basis, such as items
//! newly created or revised by sellers … triggered by the event of new item
//! creation or revision, behind a Flink processing window and feature
//! enrichment."
//!
//! Reproduced as: an event channel (crossbeam), a worker thread that drains
//! events into a **deduplication window** (multiple revisions of one item
//! within a window collapse to the latest — the Flink-window behaviour),
//! runs GraphEx inference, and writes to the KV store.

use crate::kv::KvStore;
use crate::registry::ModelWatch;
use graphex_core::{Engine, GraphExModel, InferRequest, LeafId, Scratch};
use graphex_textkit::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A seller-side item lifecycle event.
#[derive(Debug, Clone)]
pub enum ItemEvent {
    Created { id: u32, title: String, leaf: LeafId },
    Revised { id: u32, title: String, leaf: LeafId },
}

impl ItemEvent {
    fn into_parts(self) -> (u32, String, LeafId) {
        match self {
            ItemEvent::Created { id, title, leaf } | ItemEvent::Revised { id, title, leaf } => {
                (id, title, leaf)
            }
        }
    }
}

/// NRT tuning.
#[derive(Debug, Clone)]
pub struct NrtConfig {
    /// Max events gathered into one processing window.
    pub window_size: usize,
    /// Max time to wait filling a window.
    pub window_timeout: Duration,
    /// Predictions per item.
    pub k: usize,
}

impl Default for NrtConfig {
    fn default() -> Self {
        Self { window_size: 64, window_timeout: Duration::from_millis(20), k: 20 }
    }
}

/// Counters exposed on shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NrtStats {
    pub events_received: u64,
    pub items_scored: u64,
    /// Events collapsed by window deduplication.
    pub deduplicated: u64,
    /// Registry version of the last model the worker scored with (0 for a
    /// fixed model without a registry).
    pub snapshot_version: u64,
    /// Model hot-swaps the worker observed between windows.
    pub model_swaps: u64,
}

/// Running NRT service handle.
pub struct NrtService {
    sender: Option<crossbeam::channel::Sender<ItemEvent>>,
    worker: Option<std::thread::JoinHandle<()>>,
    received: Arc<AtomicU64>,
    scored: Arc<AtomicU64>,
    deduped: Arc<AtomicU64>,
    snapshot_version: Arc<AtomicU64>,
    model_swaps: Arc<AtomicU64>,
}

impl NrtService {
    /// Starts the worker thread over one fixed model.
    pub fn start(model: Arc<GraphExModel>, store: Arc<KvStore>, config: NrtConfig) -> Self {
        Self::start_with_watch(ModelWatch::fixed(Engine::new(model)), store, config)
    }

    /// Starts the worker thread over a registry watch: the worker
    /// re-resolves the model at every window boundary, so a republished
    /// snapshot takes effect mid-stream (each window is scored by exactly
    /// one snapshot).
    pub fn start_with_watch(watch: ModelWatch, store: Arc<KvStore>, config: NrtConfig) -> Self {
        let (sender, receiver) = crossbeam::channel::unbounded::<ItemEvent>();
        let received = Arc::new(AtomicU64::new(0));
        let scored = Arc::new(AtomicU64::new(0));
        let deduped = Arc::new(AtomicU64::new(0));
        let snapshot_version = Arc::new(AtomicU64::new(watch.version()));
        let model_swaps = Arc::new(AtomicU64::new(0));

        let worker = {
            let (scored, deduped) = (scored.clone(), deduped.clone());
            let (snapshot_version, model_swaps) = (snapshot_version.clone(), model_swaps.clone());
            std::thread::spawn(move || {
                let mut scratch = Scratch::new();
                let mut last_version = watch.version();
                // item id → latest (title, leaf) inside the current window
                let mut window: FxHashMap<u32, (String, LeafId)> = FxHashMap::default();
                loop {
                    window.clear();
                    // Block for the first event; drain the rest of the
                    // window without blocking past the timeout.
                    match receiver.recv() {
                        Ok(event) => {
                            let (id, title, leaf) = event.into_parts();
                            window.insert(id, (title, leaf));
                        }
                        Err(_) => break, // channel closed: shut down
                    }
                    let deadline = std::time::Instant::now() + config.window_timeout;
                    while window.len() < config.window_size {
                        let now = std::time::Instant::now();
                        if now >= deadline {
                            break;
                        }
                        match receiver.recv_timeout(deadline - now) {
                            Ok(event) => {
                                let (id, title, leaf) = event.into_parts();
                                if window.insert(id, (title, leaf)).is_some() {
                                    deduped.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => break,
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                        }
                    }
                    // Resolve the model once per window: the held `Arc`
                    // pins one snapshot for the whole window even if a
                    // publish lands mid-way.
                    let active = watch.current();
                    if active.version != last_version {
                        model_swaps.fetch_add(1, Ordering::Relaxed);
                        snapshot_version.store(active.version, Ordering::Relaxed);
                        last_version = active.version;
                    }
                    let model = active.engine.model();
                    // Deterministic processing order within the window.
                    let mut batch: Vec<(u32, String, LeafId)> =
                        window.drain().map(|(id, (t, l))| (id, t, l)).collect();
                    batch.sort_unstable_by_key(|&(id, _, _)| id);
                    for (id, title, leaf) in batch {
                        let request = InferRequest::new(&title, leaf)
                            .k(config.k)
                            .id(u64::from(id))
                            .resolve_texts(true);
                        let response = model.infer_request(&request, &mut scratch);
                        if response.is_servable() {
                            store.put(u64::from(id), response.texts, response.outcome, active.version);
                        }
                        scored.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        };

        Self {
            sender: Some(sender),
            worker: Some(worker),
            received,
            scored,
            deduped,
            snapshot_version,
            model_swaps,
        }
    }

    /// Enqueues an event (non-blocking).
    pub fn submit(&self, event: ItemEvent) {
        self.received.fetch_add(1, Ordering::Relaxed);
        if let Some(sender) = &self.sender {
            // Receiver only disappears at shutdown; drop events after that.
            let _ = sender.send(event);
        }
    }

    /// Closes the channel, waits for the worker to drain, returns counters.
    pub fn shutdown(mut self) -> NrtStats {
        self.sender.take(); // close channel → worker exits after draining
        if let Some(worker) = self.worker.take() {
            worker.join().expect("NRT worker panicked");
        }
        NrtStats {
            events_received: self.received.load(Ordering::Relaxed),
            items_scored: self.scored.load(Ordering::Relaxed),
            deduplicated: self.deduped.load(Ordering::Relaxed),
            snapshot_version: self.snapshot_version.load(Ordering::Relaxed),
            model_swaps: self.model_swaps.load(Ordering::Relaxed),
        }
    }
}

impl Drop for NrtService {
    fn drop(&mut self) {
        self.sender.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_core::{GraphExBuilder, GraphExConfig, KeyphraseRecord};

    fn model() -> Arc<GraphExModel> {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        Arc::new(
            GraphExBuilder::new(config)
                .add_records((0..10).map(|i| {
                    KeyphraseRecord::new(format!("brand{i} widget model{i}"), LeafId(i % 2), 50, 5)
                }))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn events_produce_stored_recommendations() {
        let store = Arc::new(KvStore::new());
        let service = NrtService::start(model(), store.clone(), NrtConfig::default());
        for i in 0..20u32 {
            service.submit(ItemEvent::Created {
                id: i,
                title: format!("brand{} widget model{}", i % 10, i % 10),
                leaf: LeafId(i % 2),
            });
        }
        let stats = service.shutdown();
        assert_eq!(stats.events_received, 20);
        assert_eq!(stats.items_scored as usize + stats.deduplicated as usize, 20);
        assert_eq!(store.len(), 20);
        for i in 0..20u64 {
            let stored = store.get(i).unwrap();
            assert!(!stored.keyphrases.is_empty());
            assert_eq!(stored.outcome, graphex_core::Outcome::ExactLeaf);
        }
    }

    #[test]
    fn window_dedups_rapid_revisions() {
        let store = Arc::new(KvStore::new());
        // Large window + long timeout so all events land in one window.
        let config = NrtConfig {
            window_size: 100,
            window_timeout: Duration::from_millis(300),
            k: 10,
        };
        let service = NrtService::start(model(), store.clone(), config);
        for rev in 0..10u32 {
            service.submit(ItemEvent::Revised {
                id: 7,
                title: format!("brand{} widget model{}", rev % 10, rev % 10),
                leaf: LeafId((rev % 10) % 2),
            });
        }
        let stats = service.shutdown();
        assert_eq!(stats.events_received, 10);
        assert!(stats.deduplicated >= 8, "dedup too low: {}", stats.deduplicated);
        // Final state reflects the *latest* revision.
        let recs = store.get(7).unwrap();
        assert!(recs.keyphrases.iter().any(|k| k.contains("model9")), "{recs:?}");
        assert_eq!(recs.version, 1, "deduped revisions must write once");
    }

    #[test]
    fn unknown_leaf_event_is_counted_but_not_stored() {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        config.build_meta_fallback = false;
        let model = Arc::new(
            GraphExBuilder::new(config)
                .add_record(KeyphraseRecord::new("a phrase", LeafId(1), 10, 1))
                .build()
                .unwrap(),
        );
        let store = Arc::new(KvStore::new());
        let service = NrtService::start(model, store.clone(), NrtConfig::default());
        service.submit(ItemEvent::Created { id: 1, title: "a phrase thing".into(), leaf: LeafId(42) });
        let stats = service.shutdown();
        assert_eq!(stats.items_scored, 1);
        assert!(store.get(1).is_none());
    }

    #[test]
    fn shutdown_with_no_events() {
        let store = Arc::new(KvStore::new());
        let service = NrtService::start(model(), store, NrtConfig::default());
        let stats = service.shutdown();
        assert_eq!(
            stats,
            NrtStats {
                events_received: 0,
                items_scored: 0,
                deduplicated: 0,
                snapshot_version: 0,
                model_swaps: 0,
            }
        );
    }
}

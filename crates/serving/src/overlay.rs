//! The mutable overlay store: seconds-latency upserts over an immutable
//! snapshot, drained by the next delta-build compaction.
//!
//! An [`OverlayStore`] owns two things:
//!
//! * the **journal** — the append-only sequence of raw upserted
//!   [`KeyphraseRecord`]s, exactly as received. This is the compaction
//!   currency: `graphex build --delta --overlay-journal` feeds these
//!   records into the build pipeline as one more record source, so the
//!   compacted snapshot is byte-identical to a direct rebuild of the
//!   union corpus (the pipeline's determinism property does the proof).
//! * the **view** — an `Arc<OverlayView>` composed from the journal's
//!   pending records, swapped atomically after every accepted upsert
//!   batch. Readers clone the `Arc` and never block on writers.
//!
//! Writes are bounded: once the uncompacted journal exceeds
//! `cap_bytes`, further upserts are shed with [`OverlayError::CapExceeded`]
//! (the HTTP edge maps it to `429` + `Retry-After`) — compaction, not
//! unbounded growth, is the steady state. After a compaction publishes,
//! [`OverlayStore::drain`] atomically drops every journal entry the new
//! snapshot absorbed (identified by the export's `upto` sequence) and
//! rebuilds the view from whatever arrived since the export.
//!
//! KV interaction: every accepted write bumps a per-leaf last-write
//! sequence ([`OverlayStore::leaf_seq`]); `ServingApi` tags cached store
//! entries with the view sequence they were computed at and treats an
//! entry as stale when its tag is older than the leaf's last write — so
//! overlay writes invalidate exactly the affected items, lazily, through
//! the existing single-flight read-through.

use graphex_core::{GraphExModel, KeyphraseRecord, LeafId, OverlayView};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// Default journal cap: plenty for an inter-compaction window, small
/// enough that a stuck compactor surfaces as 429s instead of OOM.
pub const DEFAULT_OVERLAY_CAP_BYTES: usize = 8 * 1024 * 1024;

/// Seconds a shed writer is told to wait before retrying (the expected
/// order of a compaction cycle, not a precise promise).
pub const SHED_RETRY_AFTER_SECS: u64 = 5;

/// One journal entry: a raw upserted record and the global sequence
/// number it was accepted at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    pub seq: u64,
    pub record: KeyphraseRecord,
}

/// Why an upsert was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlayError {
    /// The uncompacted journal would exceed the configured cap; retry
    /// after the next compaction drains it.
    CapExceeded { cap_bytes: usize, journal_bytes: usize, retry_after_secs: u64 },
    /// A record failed validation (empty text, or text containing the
    /// tab/newline bytes the journal interchange format reserves).
    Invalid(String),
}

impl std::fmt::Display for OverlayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverlayError::CapExceeded { cap_bytes, journal_bytes, .. } => write!(
                f,
                "overlay journal at {journal_bytes} bytes would exceed the {cap_bytes}-byte cap; retry after compaction"
            ),
            OverlayError::Invalid(what) => write!(f, "invalid upsert record: {what}"),
        }
    }
}

impl std::error::Error for OverlayError {}

/// Acknowledgement of an accepted upsert batch. Once returned, every
/// record in the batch is servable: the view swap happens before the ack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpsertAck {
    /// Sequence of the last record in the batch.
    pub seq: u64,
    /// Records applied in this batch.
    pub applied: usize,
    /// Uncompacted journal depth (records) after the batch.
    pub depth: usize,
    /// Approximate uncompacted journal bytes after the batch.
    pub journal_bytes: usize,
}

/// Result of a [`OverlayStore::drain`] after compaction publishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Journal entries dropped (absorbed by the published snapshot).
    pub drained: usize,
    /// Entries still pending (arrived after the journal export).
    pub remaining: usize,
}

/// A point-in-time snapshot of overlay accounting, for `/statusz`,
/// `/metrics`, and the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverlayStatus {
    /// Last assigned global sequence.
    pub seq: u64,
    /// Highest sequence already compacted away.
    pub drained_upto: u64,
    /// Uncompacted journal depth (records).
    pub depth: usize,
    /// Approximate uncompacted journal bytes.
    pub journal_bytes: usize,
    /// Configured journal cap.
    pub cap_bytes: usize,
    /// Leaves currently overlaid in the live view.
    pub leaves: usize,
    /// Upsert batches accepted.
    pub upserts_applied: u64,
    /// Records accepted across all batches.
    pub records_applied: u64,
    /// Upsert batches shed at the cap.
    pub upserts_shed: u64,
    /// Compaction drains performed.
    pub drains: u64,
}

#[derive(Debug, Default)]
struct OverlayInner {
    journal: Vec<JournalEntry>,
    /// Per-leaf pending raw records (the view's build input).
    pending: BTreeMap<LeafId, Vec<KeyphraseRecord>>,
    seq: u64,
    drained_upto: u64,
    journal_bytes: usize,
}

/// The serving-side mutable overlay (see module docs).
#[derive(Debug)]
pub struct OverlayStore {
    inner: Mutex<OverlayInner>,
    view: RwLock<Arc<OverlayView>>,
    /// Per-leaf last-accepted-write sequence; monotone, never trimmed
    /// (bounded by the number of distinct leaves ever upserted).
    leaf_seq: RwLock<HashMap<u32, u64>>,
    cap_bytes: usize,
    upserts_applied: AtomicU64,
    records_applied: AtomicU64,
    upserts_shed: AtomicU64,
    drains: AtomicU64,
}

impl OverlayStore {
    /// An empty store with the default cap.
    pub fn new() -> Self {
        Self::with_cap(DEFAULT_OVERLAY_CAP_BYTES)
    }

    /// An empty store shedding writes past `cap_bytes` of journal.
    pub fn with_cap(cap_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(OverlayInner::default()),
            view: RwLock::new(Arc::new(OverlayView::empty())),
            leaf_seq: RwLock::new(HashMap::new()),
            cap_bytes,
            upserts_applied: AtomicU64::new(0),
            records_applied: AtomicU64::new(0),
            upserts_shed: AtomicU64::new(0),
            drains: AtomicU64::new(0),
        }
    }

    /// The configured journal cap in bytes.
    pub fn cap_bytes(&self) -> usize {
        self.cap_bytes
    }

    /// The live composed view (cheap `Arc` clone; never blocks writers
    /// for longer than the swap).
    pub fn view(&self) -> Arc<OverlayView> {
        Arc::clone(&self.view.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Sequence of the last accepted write touching `leaf` (0 if never
    /// written). The KV staleness comparison: a cached entry computed at
    /// view sequence `s` is stale for this leaf iff `s < leaf_seq(leaf)`.
    pub fn leaf_seq(&self, leaf: LeafId) -> u64 {
        self.leaf_seq
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&leaf.0)
            .copied()
            .unwrap_or(0)
    }

    /// Applies a batch of raw upsert records against `base`, rebuilding
    /// the affected leaves' mini graphs and swapping the view **before**
    /// acknowledging — an acked record is servable by the very next
    /// request. All-or-nothing: a shed or invalid batch changes nothing.
    pub fn apply(
        &self,
        base: &GraphExModel,
        records: &[KeyphraseRecord],
    ) -> Result<UpsertAck, OverlayError> {
        if records.is_empty() {
            return Err(OverlayError::Invalid("empty upsert batch".into()));
        }
        for rec in records {
            if rec.text.is_empty() {
                return Err(OverlayError::Invalid("empty keyphrase text".into()));
            }
            if rec.text.contains('\t') || rec.text.contains('\n') || rec.text.contains('\r') {
                return Err(OverlayError::Invalid(format!(
                    "keyphrase text contains reserved control characters: {:?}",
                    rec.text
                )));
            }
        }
        let added_bytes: usize = records.iter().map(Self::record_bytes).sum();

        let mut inner = self.lock_inner();
        if inner.journal_bytes + added_bytes > self.cap_bytes {
            self.upserts_shed.fetch_add(1, Ordering::Relaxed);
            return Err(OverlayError::CapExceeded {
                cap_bytes: self.cap_bytes,
                journal_bytes: inner.journal_bytes,
                retry_after_secs: SHED_RETRY_AFTER_SECS,
            });
        }

        let mut touched: Vec<LeafId> = Vec::new();
        for rec in records {
            inner.seq += 1;
            let seq = inner.seq;
            inner.journal.push(JournalEntry { seq, record: rec.clone() });
            inner.pending.entry(rec.leaf).or_default().push(rec.clone());
            if !touched.contains(&rec.leaf) {
                touched.push(rec.leaf);
            }
        }
        inner.journal_bytes += added_bytes;
        let seq = inner.seq;

        // Rebuild only the touched leaves, sharing the rest of the view.
        let mut view = self.view();
        for leaf in &touched {
            let delta = inner.pending.get(leaf).map(Vec::as_slice).unwrap_or(&[]);
            view = Arc::new(view.with_leaf(base, *leaf, delta, seq));
        }
        let ack = UpsertAck {
            seq,
            applied: records.len(),
            depth: inner.journal.len(),
            journal_bytes: inner.journal_bytes,
        };
        {
            let mut leaf_seq = self.leaf_seq.write().unwrap_or_else(PoisonError::into_inner);
            for leaf in &touched {
                leaf_seq.insert(leaf.0, seq);
            }
        }
        *self.view.write().unwrap_or_else(PoisonError::into_inner) = view;
        drop(inner);

        self.upserts_applied.fetch_add(1, Ordering::Relaxed);
        self.records_applied.fetch_add(records.len() as u64, Ordering::Relaxed);
        Ok(ack)
    }

    /// Exports the current journal for compaction. The export's `upto`
    /// sequence is what the compactor hands back to [`OverlayStore::drain`]
    /// after the compacted snapshot publishes, so records upserted during
    /// the compaction window survive the drain.
    pub fn export_journal(&self) -> OverlayJournal {
        let inner = self.lock_inner();
        OverlayJournal { upto: inner.seq, entries: inner.journal.clone() }
    }

    /// Atomically drops every journal entry with `seq <= upto` (absorbed
    /// by a published compaction) and rebuilds the view from the
    /// remainder against the **new** base model.
    pub fn drain(&self, base: &GraphExModel, upto: u64) -> DrainReport {
        let mut inner = self.lock_inner();
        let before = inner.journal.len();
        inner.journal.retain(|e| e.seq > upto);
        let remaining = inner.journal.len();
        inner.drained_upto = inner.drained_upto.max(upto);
        inner.pending.clear();
        inner.journal_bytes = 0;
        // Borrow the journal separately so the per-entry loop can mutate
        // the other fields.
        let entries: Vec<JournalEntry> = inner.journal.clone();
        for entry in &entries {
            inner.pending.entry(entry.record.leaf).or_default().push(entry.record.clone());
            inner.journal_bytes += Self::record_bytes(&entry.record);
        }
        let view = Arc::new(OverlayView::build(base, &inner.pending, inner.seq));
        *self.view.write().unwrap_or_else(PoisonError::into_inner) = view;
        drop(inner);
        self.drains.fetch_add(1, Ordering::Relaxed);
        DrainReport { drained: before - remaining, remaining }
    }

    /// Re-composes the live view against a *new* base model without
    /// touching the journal — called after a (non-compaction) snapshot
    /// hot-swap so overlaid leaves merge against what is actually
    /// serving.
    pub fn rebase(&self, base: &GraphExModel) {
        let inner = self.lock_inner();
        let view = Arc::new(OverlayView::build(base, &inner.pending, inner.seq));
        *self.view.write().unwrap_or_else(PoisonError::into_inner) = view;
    }

    /// Point-in-time accounting.
    pub fn status(&self) -> OverlayStatus {
        let inner = self.lock_inner();
        let leaves = self.view().num_leaves();
        OverlayStatus {
            seq: inner.seq,
            drained_upto: inner.drained_upto,
            depth: inner.journal.len(),
            journal_bytes: inner.journal_bytes,
            cap_bytes: self.cap_bytes,
            leaves,
            upserts_applied: self.upserts_applied.load(Ordering::Relaxed),
            records_applied: self.records_applied.load(Ordering::Relaxed),
            upserts_shed: self.upserts_shed.load(Ordering::Relaxed),
            drains: self.drains.load(Ordering::Relaxed),
        }
    }

    fn record_bytes(rec: &KeyphraseRecord) -> usize {
        // text + leaf/search/recall + per-entry bookkeeping.
        rec.text.len() + 24
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, OverlayInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Default for OverlayStore {
    fn default() -> Self {
        Self::new()
    }
}

// ====================================================================
// Journal interchange format
// ====================================================================

/// A serialized overlay journal: the interchange between a serving
/// process and the compacting build (`graphex build --delta
/// --overlay-journal <file>`).
///
/// Text format, one record per line after a two-line header:
///
/// ```text
/// graphex-overlay-journal 1
/// upto <last exported sequence>
/// <seq>\t<text>\t<leaf>\t<search>\t<recall>
/// ...
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OverlayJournal {
    /// Last sequence covered by this export ([`OverlayStore::drain`]'s
    /// argument once the compaction publishes).
    pub upto: u64,
    /// Entries in sequence order.
    pub entries: Vec<JournalEntry>,
}

impl OverlayJournal {
    /// The raw records, in sequence order — what the build pipeline
    /// ingests as one more record source.
    pub fn records(&self) -> Vec<KeyphraseRecord> {
        self.entries.iter().map(|e| e.record.clone()).collect()
    }

    /// Serializes to the interchange text format.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(64 + self.entries.len() * 48);
        out.push_str("graphex-overlay-journal 1\n");
        out.push_str(&format!("upto {}\n", self.upto));
        for entry in &self.entries {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\n",
                entry.seq,
                entry.record.text,
                entry.record.leaf.0,
                entry.record.search_count,
                entry.record.recall_count
            ));
        }
        out
    }

    /// Parses the interchange text format (inverse of
    /// [`OverlayJournal::to_text`]).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("graphex-overlay-journal 1") => {}
            Some(other) => return Err(format!("not an overlay journal (header {other:?})")),
            None => return Err("empty journal file".into()),
        }
        let upto = match lines.next().and_then(|l| l.strip_prefix("upto ")) {
            Some(v) => v.parse::<u64>().map_err(|_| format!("bad upto value {v:?}"))?,
            None => return Err("missing upto header line".into()),
        };
        let mut entries = Vec::new();
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let mut cols = line.split('\t');
            let err = |what: &str| format!("journal line {}: {what}", i + 3);
            let seq: u64 = cols
                .next()
                .ok_or_else(|| err("missing seq"))?
                .parse()
                .map_err(|_| err("seq is not a number"))?;
            let text = cols.next().filter(|t| !t.is_empty()).ok_or_else(|| err("empty text"))?;
            let leaf: u32 = cols
                .next()
                .ok_or_else(|| err("missing leaf"))?
                .parse()
                .map_err(|_| err("leaf is not a number"))?;
            let search: u32 = cols
                .next()
                .ok_or_else(|| err("missing search count"))?
                .parse()
                .map_err(|_| err("search count is not a number"))?;
            let recall: u32 = cols
                .next()
                .ok_or_else(|| err("missing recall count"))?
                .parse()
                .map_err(|_| err("recall count is not a number"))?;
            if cols.next().is_some() {
                return Err(err("too many columns"));
            }
            entries.push(JournalEntry {
                seq,
                record: KeyphraseRecord::new(text, LeafId(leaf), search, recall),
            });
        }
        Ok(Self { upto, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_core::{GraphExBuilder, GraphExConfig, InferRequest, Outcome};

    fn base() -> GraphExModel {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        GraphExBuilder::new(config)
            .add_records(vec![
                KeyphraseRecord::new("audeze maxwell", LeafId(7), 900, 120),
                KeyphraseRecord::new("gaming headphones xbox", LeafId(7), 800, 700),
            ])
            .build()
            .unwrap()
    }

    fn rec(text: &str, leaf: u32, s: u32, r: u32) -> KeyphraseRecord {
        KeyphraseRecord::new(text, LeafId(leaf), s, r)
    }

    #[test]
    fn apply_makes_new_leaf_servable_before_ack_returns() {
        let model = base();
        let store = OverlayStore::new();
        let ack = store.apply(&model, &[rec("ski goggles anti fog", 9, 50, 5)]).unwrap();
        assert_eq!(ack.seq, 1);
        assert_eq!(ack.applied, 1);
        // The view visible after the ack serves the new leaf.
        let view = store.view();
        let mut scratch = graphex_core::Scratch::new();
        let resp = view
            .infer_request(
                &InferRequest::new("anti fog ski goggles", LeafId(9)).resolve_texts(true),
                &mut scratch,
            )
            .unwrap();
        assert_eq!(resp.outcome, Outcome::ExactLeaf);
        assert_eq!(resp.texts[0], "ski goggles anti fog");
        assert_eq!(store.leaf_seq(LeafId(9)), 1);
        assert_eq!(store.leaf_seq(LeafId(7)), 0);
    }

    #[test]
    fn cap_sheds_without_mutating() {
        let model = base();
        let store = OverlayStore::with_cap(64);
        store.apply(&model, &[rec("fits under cap", 9, 1, 1)]).unwrap();
        let err = store
            .apply(&model, &[rec("this batch pushes the journal past the tiny cap", 9, 1, 1)])
            .unwrap_err();
        assert!(matches!(err, OverlayError::CapExceeded { .. }));
        let status = store.status();
        assert_eq!(status.depth, 1);
        assert_eq!(status.upserts_shed, 1);
        assert_eq!(store.view().num_records(), 1);
    }

    #[test]
    fn invalid_records_are_rejected() {
        let model = base();
        let store = OverlayStore::new();
        assert!(matches!(store.apply(&model, &[]), Err(OverlayError::Invalid(_))));
        assert!(matches!(
            store.apply(&model, &[rec("has\ttab", 1, 1, 1)]),
            Err(OverlayError::Invalid(_))
        ));
        assert!(matches!(
            store.apply(&model, &[rec("", 1, 1, 1)]),
            Err(OverlayError::Invalid(_))
        ));
        assert_eq!(store.status().depth, 0);
    }

    #[test]
    fn journal_round_trips_through_text() {
        let model = base();
        let store = OverlayStore::new();
        store.apply(&model, &[rec("ski goggles", 9, 50, 5), rec("audeze maxwell", 7, 10, 1)]).unwrap();
        store.apply(&model, &[rec("snow helmet kids", 10, 30, 3)]).unwrap();
        let journal = store.export_journal();
        assert_eq!(journal.upto, 3);
        let parsed = OverlayJournal::parse(&journal.to_text()).unwrap();
        assert_eq!(parsed, journal);
        assert_eq!(parsed.records().len(), 3);
    }

    #[test]
    fn journal_parse_rejects_garbage() {
        assert!(OverlayJournal::parse("").is_err());
        assert!(OverlayJournal::parse("not a journal\nupto 0\n").is_err());
        assert!(OverlayJournal::parse("graphex-overlay-journal 1\n").is_err());
        assert!(OverlayJournal::parse("graphex-overlay-journal 1\nupto x\n").is_err());
        assert!(
            OverlayJournal::parse("graphex-overlay-journal 1\nupto 1\n1\tonly text\n").is_err()
        );
        assert!(OverlayJournal::parse("graphex-overlay-journal 1\nupto 1\n1\ta\t2\t3\t4\t5\n")
            .is_err());
    }

    #[test]
    fn drain_drops_absorbed_entries_and_keeps_late_arrivals() {
        let model = base();
        let store = OverlayStore::new();
        store.apply(&model, &[rec("ski goggles", 9, 50, 5)]).unwrap();
        store.apply(&model, &[rec("snow helmet", 10, 30, 3)]).unwrap();
        let journal = store.export_journal();
        assert_eq!(journal.upto, 2);
        // A write lands while the compaction is building/publishing.
        store.apply(&model, &[rec("snow gloves", 11, 20, 2)]).unwrap();

        let report = store.drain(&model, journal.upto);
        assert_eq!(report, DrainReport { drained: 2, remaining: 1 });
        let status = store.status();
        assert_eq!(status.depth, 1);
        assert_eq!(status.drained_upto, 2);
        assert_eq!(status.drains, 1);
        // The drained leaves fell out of the view; the late arrival stays.
        let view = store.view();
        assert!(!view.covers(LeafId(9)));
        assert!(!view.covers(LeafId(10)));
        assert!(view.covers(LeafId(11)));
        // Per-leaf sequences stay monotone so stale KV entries for the
        // drained leaves never look fresher than post-drain writes.
        assert_eq!(store.leaf_seq(LeafId(9)), 1);
    }

    #[test]
    fn rebase_recomposes_against_a_new_model() {
        let model = base();
        let store = OverlayStore::new();
        store.apply(&model, &[rec("audeze maxwell xbox edition", 7, 990, 10)]).unwrap();

        // A richer snapshot hot-swaps in (not a compaction of this
        // journal): the overlaid leaf must re-merge against it.
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        let next = GraphExBuilder::new(config)
            .add_records(vec![
                KeyphraseRecord::new("audeze maxwell", LeafId(7), 900, 120),
                KeyphraseRecord::new("gaming headphones xbox", LeafId(7), 800, 700),
                KeyphraseRecord::new("wireless headphones xbox", LeafId(7), 650, 800),
            ])
            .build()
            .unwrap();
        store.rebase(&next);
        let view = store.view();
        let mut scratch = graphex_core::Scratch::new();
        let resp = view
            .infer_request(
                &InferRequest::new("wireless audeze maxwell xbox", LeafId(7)).k(10).resolve_texts(true),
                &mut scratch,
            )
            .unwrap();
        assert!(resp.texts.iter().any(|t| t == "wireless headphones xbox"));
        assert!(resp.texts.iter().any(|t| t == "audeze maxwell xbox edition"));
    }

    #[test]
    fn concurrent_upserts_and_reads_stay_consistent() {
        let model = Arc::new(base());
        let store = Arc::new(OverlayStore::new());
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let store = Arc::clone(&store);
                let model = Arc::clone(&model);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        store
                            .apply(&model, &[rec(&format!("phrase {w} {i}"), 100 + w, 10, 1)])
                            .unwrap();
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    let mut scratch = graphex_core::Scratch::new();
                    for _ in 0..200 {
                        let view = store.view();
                        for leaf in 100..104 {
                            if let Some(resp) = view.infer_request(
                                &InferRequest::new("phrase 0 1", LeafId(leaf)),
                                &mut scratch,
                            ) {
                                assert!(matches!(resp.outcome, Outcome::ExactLeaf | Outcome::Empty));
                            }
                        }
                    }
                })
            })
            .collect();
        for t in writers.into_iter().chain(readers) {
            t.join().unwrap();
        }
        let status = store.status();
        assert_eq!(status.seq, 100);
        assert_eq!(status.records_applied, 100);
        assert_eq!(store.view().num_records(), 100);
    }
}

//! Multi-tenant residency: many named model registries behind one
//! handle, with an LRU cap on how many are resident at once.
//!
//! GraphEx is deployed as *many* models — one per category or market —
//! and the paper's daily-refresh loop (Sec. IV-H) republishes each of
//! them independently. A [`TenantFleet`] manages that shape on one box:
//!
//! ```text
//! <root>/tenants/
//!   electronics/      ← a full ModelRegistry root (CURRENT, 1/, 2/, …)
//!   fashion/
//!   motors/
//! ```
//!
//! Each tenant moves through a small residency state machine:
//!
//! ```text
//!            admit (lazy, on first request)
//!   cold ────────────────────────────────────▶ resident
//!     ▲                                           │
//!     │    evict (LRU over cap, or explicit)      │
//!     └───────────────────────────────────────────┘
//! ```
//!
//! * **cold** — a directory on disk. Costs nothing; `list` reads only
//!   names and manifests.
//! * **resident** — an open [`ModelRegistry`] (mmap-backed by default,
//!   so the snapshot's pages live in the shared page cache) plus a
//!   per-tenant [`ServingApi`] with its own [`KvStore`], stats, and
//!   [`ModelWatch`](crate::ModelWatch) — publishes hot-swap one tenant
//!   without touching its neighbours.
//!
//! Admission runs the registry's full pipeline (load → manifest
//! checksum → structural parse → warm-up), so a corrupt tenant is
//! refused with an error naming its snapshot file while every other
//! tenant keeps serving. Eviction drops the resident handles: in-flight
//! requests finish on the `Arc`s they hold, the mmap unmaps when the
//! last one drops, and the tenant's serve counters are folded into a
//! persistent per-tenant accumulator so `evict → re-admit` never loses
//! stats. Because admission re-reads the page cache, re-admitting a
//! recently evicted tenant is close to free — that is the point of the
//! mmap backend.

use crate::api::{ServeStats, ServingApi, SwapPolicy};
use crate::kv::KvStore;
use crate::overlay::{OverlayStatus, OverlayStore, DEFAULT_OVERLAY_CAP_BYTES};
use crate::registry::{ModelRegistry, RegistryError, RegistryResult, SnapshotMeta};
use graphex_core::serialize::LoadMode;
use graphex_core::GraphExModel;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Subdirectory of the fleet root holding one registry per tenant.
pub const TENANTS_DIR: &str = "tenants";

/// Fleet-wide policy knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Maximum tenants resident at once (clamped to ≥ 1). Admitting
    /// past the cap evicts the least-recently-used resident.
    pub resident_cap: usize,
    /// Default top-k for every tenant's serving api.
    pub default_k: usize,
    /// Snapshot storage backend for tenant registries.
    pub load_mode: LoadMode,
    /// Cache policy applied to every tenant's serving api.
    pub swap_policy: SwapPolicy,
    /// Tenant served by legacy (un-prefixed) request paths.
    pub default_tenant: String,
    /// Attach a per-tenant [`OverlayStore`] to every admitted tenant so
    /// `/v1/t/<t>/upsert` works. Overlay stores live in the tenant
    /// state, not the resident incarnation — uncompacted upserts
    /// survive evict/re-admit churn.
    pub overlay: bool,
    /// Journal byte cap for each tenant's overlay (when enabled).
    pub overlay_cap_bytes: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            resident_cap: 4,
            default_k: 10,
            load_mode: LoadMode::default(),
            swap_policy: SwapPolicy::Serve,
            default_tenant: "default".into(),
            overlay: false,
            overlay_cap_bytes: DEFAULT_OVERLAY_CAP_BYTES,
        }
    }
}

/// Errors surfaced by fleet operations.
#[derive(Debug)]
pub enum FleetError {
    /// Tenant names are path components; anything outside
    /// `[A-Za-z0-9_-]{1,64}` is refused before touching the filesystem.
    InvalidName(String),
    /// No such tenant directory under `<root>/tenants/`.
    UnknownTenant(String),
    /// The tenant exists but could not be admitted (or published to);
    /// the inner error names the failing file where applicable.
    Tenant { name: String, source: RegistryError },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidName(name) => {
                write!(f, "invalid tenant name {name:?} (want [A-Za-z0-9_-], 1..=64 chars)")
            }
            Self::UnknownTenant(name) => write!(f, "unknown tenant {name:?}"),
            Self::Tenant { name, source } => write!(f, "tenant {name:?}: {source}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Tenant { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Convenience alias for fleet operations.
pub type FleetResult<T> = std::result::Result<T, FleetError>;

/// `true` iff `name` is usable as a tenant name (and therefore as a
/// directory name and a URL path segment): `[A-Za-z0-9_-]`, 1–64 chars.
/// The charset excludes `/`, `\`, `.` and whitespace, so a tenant name
/// can never traverse outside `<root>/tenants/`.
pub fn is_valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

/// The resident half of a tenant: live handles, dropped on eviction.
struct Resident {
    registry: Arc<ModelRegistry>,
    api: Arc<ServingApi>,
    /// LRU tick of the last request routed to this tenant.
    last_used: u64,
    /// Wall-clock cost of the admission that made this incarnation
    /// (open + load + checksum + warm-up).
    admitted_in: Duration,
}

#[derive(Default)]
struct TenantState {
    /// Counters folded in from evicted incarnations.
    folded: ServeStats,
    admissions: u64,
    evictions: u64,
    resident: Option<Resident>,
    /// Per-tenant overlay (when [`FleetConfig::overlay`] is set),
    /// created on first admission and re-attached to every later
    /// incarnation so uncompacted upserts outlive evictions.
    overlay: Option<Arc<OverlayStore>>,
}

struct Inner {
    tenants: BTreeMap<String, TenantState>,
    /// Monotone use-counter backing the LRU order (no wall clock: ties
    /// and clock steps must not change eviction order).
    tick: u64,
}

/// One row of the fleet table (what `/statusz` and `graphex tenant
/// list` render).
#[derive(Debug, Clone)]
pub struct TenantStatus {
    pub name: String,
    pub resident: bool,
    /// Snapshot version: the *active* one while resident, else the
    /// last-known published version read from the tenant's on-disk
    /// registry pin (0 only for a tenant that never had a publish).
    /// A cold tenant with three published snapshots reports 3, not 0.
    pub snapshot_version: u64,
    /// Storage backend actually serving the resident snapshot.
    pub load_mode: Option<LoadMode>,
    /// Size of the resident snapshot's backing bytes (0 while cold).
    /// Under mmap this is file bytes shared with the page cache, not
    /// private anonymous memory.
    pub resident_bytes: u64,
    pub admissions: u64,
    pub evictions: u64,
    /// Cold-start cost of the current incarnation, if resident.
    pub admitted_in: Option<Duration>,
    /// Lifetime serve counters: folded evicted incarnations + the live
    /// one.
    pub stats: ServeStats,
    /// Overlay depth/counters, when the fleet runs with overlays
    /// enabled (present even while cold — the overlay outlives
    /// residency).
    pub overlay: Option<OverlayStatus>,
}

/// Many named model registries under one root, with lazy admission and
/// an LRU residency cap (see module docs).
pub struct TenantFleet {
    tenants_root: PathBuf,
    config: FleetConfig,
    inner: Mutex<Inner>,
}

impl TenantFleet {
    /// Opens a fleet rooted at `<root>/tenants/`, creating the directory
    /// if needed. Existing tenant directories are registered **cold** —
    /// nothing is loaded until the first request (or an explicit
    /// [`TenantFleet::admit`]) touches a tenant.
    pub fn open(root: impl AsRef<Path>, mut config: FleetConfig) -> RegistryResult<Self> {
        config.resident_cap = config.resident_cap.max(1);
        let tenants_root = root.as_ref().join(TENANTS_DIR);
        std::fs::create_dir_all(&tenants_root)?;
        let mut tenants = BTreeMap::new();
        for entry in std::fs::read_dir(&tenants_root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            if let Some(name) = entry.file_name().to_str() {
                if is_valid_tenant_name(name) {
                    tenants.insert(name.to_string(), TenantState::default());
                }
            }
        }
        Ok(Self { tenants_root, config, inner: Mutex::new(Inner { tenants, tick: 0 }) })
    }

    /// The `<root>/tenants/` directory this fleet manages.
    pub fn tenants_root(&self) -> &Path {
        &self.tenants_root
    }

    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The tenant legacy (un-prefixed) request paths resolve to.
    pub fn default_tenant(&self) -> &str {
        &self.config.default_tenant
    }

    /// All known tenant names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.inner.lock().tenants.keys().cloned().collect()
    }

    /// Fleet table: one status row per tenant, sorted by name.
    pub fn list(&self) -> Vec<TenantStatus> {
        let inner = self.inner.lock();
        inner.tenants.iter().map(|(name, state)| self.status_of(name, state)).collect()
    }

    /// One tenant's status row, if the tenant is known.
    pub fn status(&self, name: &str) -> Option<TenantStatus> {
        let inner = self.inner.lock();
        inner.tenants.get(name).map(|state| self.status_of(name, state))
    }

    /// Lifetime serve counters for one tenant (folded + live).
    pub fn stats(&self, name: &str) -> FleetResult<ServeStats> {
        self.status(name).map(|s| s.stats).ok_or_else(|| FleetError::UnknownTenant(name.into()))
    }

    /// Number of tenants currently resident.
    pub fn resident_count(&self) -> usize {
        self.inner.lock().tenants.values().filter(|t| t.resident.is_some()).count()
    }

    /// Total backing bytes across resident tenants (page-cache-shared
    /// under mmap, private heap under `LoadMode::Heap`).
    pub fn resident_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner.tenants.values().filter_map(|t| t.resident.as_ref()).map(resident_bytes).sum()
    }

    /// The serving api for `name`, admitting the tenant if it is cold
    /// (and evicting the least-recently-used resident if that pushes
    /// the fleet over its cap). This is the per-request entry point:
    /// resident lookups are one mutex + map probe; only a cold tenant
    /// pays the admission pipeline.
    ///
    /// Serving happens entirely on the returned `Arc` — an eviction (or
    /// hot swap) after this call returns does not disturb the request
    /// using it.
    pub fn api(&self, name: &str) -> FleetResult<Arc<ServingApi>> {
        if !is_valid_tenant_name(name) {
            return Err(FleetError::InvalidName(name.into()));
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;

        // Tenants can appear on disk after `open` (publish from another
        // process): an unknown name re-checks the filesystem once.
        if !inner.tenants.contains_key(name) {
            if !self.tenants_root.join(name).is_dir() {
                return Err(FleetError::UnknownTenant(name.into()));
            }
            inner.tenants.insert(name.to_string(), TenantState::default());
        }

        let state = inner.tenants.get_mut(name).expect("inserted above");
        if let Some(resident) = state.resident.as_mut() {
            resident.last_used = tick;
            return Ok(Arc::clone(&resident.api));
        }

        // Cold: run admission. Holding the fleet lock serializes
        // concurrent cold starts (single-flight per fleet — the cap
        // stays exact and one tenant is never admitted twice).
        let started = Instant::now();
        let registry = ModelRegistry::open_with_mode(self.tenants_root.join(name), self.config.load_mode)
            .map_err(|e| FleetError::Tenant { name: name.into(), source: e })?;
        let watch = registry
            .watch()
            .map_err(|e| FleetError::Tenant { name: name.into(), source: e })?;
        let mut built = ServingApi::with_watch(watch, Arc::new(KvStore::new()), self.config.default_k)
            .swap_policy(self.config.swap_policy);
        if self.config.overlay {
            let state = inner.tenants.get_mut(name).expect("inserted above");
            let overlay = state
                .overlay
                .get_or_insert_with(|| {
                    Arc::new(OverlayStore::with_cap(self.config.overlay_cap_bytes))
                })
                .clone();
            built = built.with_overlay(overlay);
        }
        let api = Arc::new(built);
        let state = inner.tenants.get_mut(name).expect("still present");
        state.admissions += 1;
        state.resident = Some(Resident {
            registry: Arc::new(registry),
            api: Arc::clone(&api),
            last_used: tick,
            admitted_in: started.elapsed(),
        });
        self.evict_over_cap(&mut inner, name);
        Ok(api)
    }

    /// Admits `name` (no-op if already resident) and returns its status.
    pub fn admit(&self, name: &str) -> FleetResult<TenantStatus> {
        self.api(name)?;
        Ok(self.status(name).expect("admitted above"))
    }

    /// Drops `name`'s resident handles (folding its counters into the
    /// persistent accumulator). Returns `true` if the tenant was
    /// resident. In-flight requests finish on the `Arc`s they hold.
    pub fn evict(&self, name: &str) -> FleetResult<bool> {
        let mut inner = self.inner.lock();
        let state = inner
            .tenants
            .get_mut(name)
            .ok_or_else(|| FleetError::UnknownTenant(name.into()))?;
        Ok(Self::evict_state(state))
    }

    /// Publishes a freshly built model to tenant `name`, creating the
    /// tenant if it does not exist yet. A resident tenant hot-swaps (its
    /// watch observes the new snapshot); a cold tenant just gains a new
    /// on-disk version for its next admission.
    pub fn publish_model(&self, name: &str, model: &GraphExModel, note: &str) -> FleetResult<SnapshotMeta> {
        self.publish_with(name, |registry| registry.publish(model, note))
    }

    /// Publishes an already-serialized snapshot file to tenant `name`
    /// (the CLI ingest path), creating the tenant if needed.
    pub fn publish_file(&self, name: &str, path: impl AsRef<Path>, note: &str) -> FleetResult<SnapshotMeta> {
        let path = path.as_ref();
        self.publish_with(name, |registry| registry.publish_file(path, note))
    }

    fn publish_with(
        &self,
        name: &str,
        publish: impl FnOnce(&ModelRegistry) -> RegistryResult<SnapshotMeta>,
    ) -> FleetResult<SnapshotMeta> {
        if !is_valid_tenant_name(name) {
            return Err(FleetError::InvalidName(name.into()));
        }
        let wrap = |e: RegistryError| FleetError::Tenant { name: name.into(), source: e };
        // Resolve the target registry under the lock, publish outside
        // it: admission of the *new* snapshot (load + warm-up) must not
        // stall requests to other tenants.
        let resident_registry = {
            let mut inner = self.inner.lock();
            inner.tenants.entry(name.to_string()).or_default();
            inner
                .tenants
                .get(name)
                .and_then(|t| t.resident.as_ref())
                .map(|r| Arc::clone(&r.registry))
        };
        match resident_registry {
            Some(registry) => publish(&registry).map_err(wrap),
            None => {
                // Cold tenant: a transient attach-mode handle publishes
                // (and fully admits) without making the tenant resident.
                let registry = ModelRegistry::attach(self.tenants_root.join(name)).map_err(wrap)?;
                publish(&registry).map_err(wrap)
            }
        }
    }

    /// Activates cross-process publishes: for every resident tenant
    /// whose on-disk pin (`CURRENT`, or a newer snapshot) differs from
    /// the serving version, runs admission and swaps. Returns
    /// `(tenant, result)` per attempted swap; a failed activation
    /// leaves that tenant serving its previous snapshot.
    ///
    /// This is the fleet analogue of `graphex serve --root`'s poll
    /// loop, one poll for N tenants.
    pub fn poll_publishes(&self) -> Vec<(String, RegistryResult<u64>)> {
        // Snapshot the resident registries, then activate outside the
        // fleet lock — loading a republished snapshot must not block
        // routing for unrelated tenants.
        let residents: Vec<(String, Arc<ModelRegistry>)> = {
            let inner = self.inner.lock();
            inner
                .tenants
                .iter()
                .filter_map(|(name, t)| {
                    t.resident.as_ref().map(|r| (name.clone(), Arc::clone(&r.registry)))
                })
                .collect()
        };
        let mut swapped = Vec::new();
        for (name, registry) in residents {
            let pinned = registry.pinned_version();
            if pinned == registry.current_version() {
                continue;
            }
            if let Some(version) = pinned {
                let result = registry.activate(version).map(|a| a.version);
                swapped.push((name, result));
            }
        }
        swapped
    }

    /// Evicts least-recently-used residents until the cap holds,
    /// never evicting `keep` (the tenant that triggered the admission).
    fn evict_over_cap(&self, inner: &mut Inner, keep: &str) {
        loop {
            let resident = inner.tenants.values().filter(|t| t.resident.is_some()).count();
            if resident <= self.config.resident_cap {
                return;
            }
            let victim = inner
                .tenants
                .iter()
                .filter(|(name, t)| t.resident.is_some() && name.as_str() != keep)
                .min_by_key(|(_, t)| t.resident.as_ref().expect("filtered resident").last_used)
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    let state = inner.tenants.get_mut(&name).expect("victim exists");
                    Self::evict_state(state);
                }
                // Only `keep` is resident: a cap of ≥ 1 always has room.
                None => return,
            }
        }
    }

    fn evict_state(state: &mut TenantState) -> bool {
        match state.resident.take() {
            Some(resident) => {
                state.folded.absorb(&resident.api.stats());
                // The evicted incarnation's in-flight gauge is a moment
                // in time, not a lifetime counter — don't carry it.
                state.folded.in_flight = 0;
                state.evictions += 1;
                true
            }
            None => false,
        }
    }

    fn status_of(&self, name: &str, state: &TenantState) -> TenantStatus {
        let mut stats = state.folded;
        let resident = state.resident.as_ref();
        if let Some(r) = resident {
            stats.absorb(&r.api.stats());
        }
        // A cold tenant still has a last-known published version on
        // disk: read the registry pin without activating anything, so
        // `list`/`status` never misreport an evicted tenant as version 0
        // (it would look like "never published" to operators).
        let snapshot_version = match resident {
            Some(r) => r.registry.current_version().unwrap_or(0),
            None => ModelRegistry::attach(self.tenants_root.join(name))
                .ok()
                .and_then(|r| r.pinned_version())
                .unwrap_or(0),
        };
        TenantStatus {
            name: name.to_string(),
            resident: resident.is_some(),
            snapshot_version,
            load_mode: resident.and_then(|r| r.registry.current().map(|a| a.load_mode)),
            resident_bytes: resident.map_or(0, resident_bytes),
            admissions: state.admissions,
            evictions: state.evictions,
            admitted_in: resident.map(|r| r.admitted_in),
            stats,
            overlay: state.overlay.as_ref().map(|o| o.status()),
        }
    }
}

impl std::fmt::Debug for TenantFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantFleet")
            .field("tenants_root", &self.tenants_root)
            .field("resident_cap", &self.config.resident_cap)
            .field("tenants", &self.names())
            .finish()
    }
}

fn resident_bytes(resident: &Resident) -> u64 {
    resident.registry.current().map_or(0, |a| a.meta.size_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_core::{GraphExBuilder, GraphExConfig, InferRequest, KeyphraseRecord, LeafId};

    fn model(tag: u32) -> GraphExModel {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        GraphExBuilder::new(config)
            .add_records((0..6u32).map(|i| {
                KeyphraseRecord::new(format!("tenant{tag} widget model{i}"), LeafId(i % 2), 100 + i, 10)
            }))
            .build()
            .unwrap()
    }

    fn temproot(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("graphex-fleet-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fleet_with(root: &Path, cap: usize, tenants: &[(&str, u32)]) -> TenantFleet {
        let fleet = TenantFleet::open(
            root,
            FleetConfig { resident_cap: cap, ..FleetConfig::default() },
        )
        .unwrap();
        for &(name, tag) in tenants {
            fleet.publish_model(name, &model(tag), "seed").unwrap();
        }
        fleet
    }

    fn ask(api: &ServingApi, tag: u32) -> Vec<String> {
        let title = format!("tenant{tag} widget model0");
        api.serve_request(&InferRequest::new(&title, LeafId(0)).k(3).resolve_texts(true)).keyphrases
    }

    #[test]
    fn lazy_admission_and_isolation() {
        let root = temproot("lazy");
        let fleet = fleet_with(&root, 4, &[("alpha", 1), ("beta", 2)]);
        assert_eq!(fleet.resident_count(), 0, "publish to cold tenants must not admit");

        let alpha = fleet.api("alpha").unwrap();
        assert_eq!(fleet.resident_count(), 1);
        assert!(ask(&alpha, 1).iter().all(|t| t.contains("tenant1")));
        let beta = fleet.api("beta").unwrap();
        assert!(ask(&beta, 2).iter().all(|t| t.contains("tenant2")));
        assert_eq!(fleet.resident_count(), 2);
        assert!(fleet.resident_bytes() > 0);

        // Per-tenant stats are isolated.
        assert_eq!(fleet.stats("alpha").unwrap().outcomes.exact_leaf, 1);
        assert_eq!(fleet.stats("beta").unwrap().outcomes.exact_leaf, 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn lru_eviction_and_readmission_serve_identical_answers() {
        let root = temproot("lru");
        let fleet = fleet_with(&root, 2, &[("a", 1), ("b", 2), ("c", 3)]);
        let first_a = ask(&fleet.api("a").unwrap(), 1);
        ask(&fleet.api("b").unwrap(), 2);
        // Touch `a` again so `b` is the LRU, then admit `c` over the cap.
        ask(&fleet.api("a").unwrap(), 1);
        ask(&fleet.api("c").unwrap(), 3);
        assert_eq!(fleet.resident_count(), 2);
        let status: BTreeMap<String, bool> =
            fleet.list().into_iter().map(|t| (t.name.clone(), t.resident)).collect();
        assert!(status["a"]);
        assert!(!status["b"], "LRU tenant must be the one evicted");
        assert!(status["c"]);

        // Re-admission serves byte-identical answers and keeps folded stats.
        let again_b = ask(&fleet.api("b").unwrap(), 2);
        assert!(again_b.iter().all(|t| t.contains("tenant2")));
        let b = fleet.status("b").unwrap();
        assert_eq!(b.admissions, 2);
        assert_eq!(b.evictions, 1);
        assert_eq!(b.stats.outcomes.exact_leaf, 2, "stats folded across eviction");
        let again_a = ask(&fleet.api("a").unwrap(), 1);
        assert_eq!(first_a, again_a);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn explicit_evict_folds_stats_and_unmaps() {
        let root = temproot("evict");
        let fleet = fleet_with(&root, 4, &[("solo", 9)]);
        let api = fleet.api("solo").unwrap();
        ask(&api, 9);
        ask(&api, 9);
        assert!(fleet.evict("solo").unwrap());
        assert!(!fleet.evict("solo").unwrap(), "double evict is a no-op");
        assert_eq!(fleet.resident_count(), 0);
        assert_eq!(fleet.resident_bytes(), 0);
        let status = fleet.status("solo").unwrap();
        assert_eq!(status.stats.outcomes.exact_leaf, 2);
        assert_eq!(
            status.snapshot_version, 1,
            "an evicted tenant reports its last-known published version, not 0"
        );
        // The Arc held across the eviction still serves (in-flight
        // requests are never disturbed).
        assert!(ask(&api, 9).iter().all(|t| t.contains("tenant9")));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn publish_hot_swaps_resident_tenant() {
        let root = temproot("swap");
        let fleet = fleet_with(&root, 4, &[("live", 1)]);
        let api = fleet.api("live").unwrap();
        assert!(ask(&api, 1).iter().all(|t| t.contains("tenant1")));
        fleet.publish_model("live", &model(5), "refresh").unwrap();
        // The same api handle observes the swap on its next request.
        assert!(ask(&api, 5).iter().all(|t| t.contains("tenant5")));
        assert_eq!(fleet.status("live").unwrap().snapshot_version, 2);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn poll_publishes_activates_cross_process_swaps() {
        let root = temproot("poll");
        let fleet = fleet_with(&root, 4, &[("ext", 1)]);
        fleet.api("ext").unwrap();
        assert!(fleet.poll_publishes().is_empty(), "nothing to swap yet");

        // Another process publishes directly into the tenant's registry.
        let other = ModelRegistry::attach(fleet.tenants_root().join("ext")).unwrap();
        other.publish(&model(7), "external").unwrap();
        drop(other);

        let swapped = fleet.poll_publishes();
        assert_eq!(swapped.len(), 1);
        assert_eq!(swapped[0].0, "ext");
        assert_eq!(*swapped[0].1.as_ref().unwrap(), 2);
        assert!(ask(&fleet.api("ext").unwrap(), 7).iter().all(|t| t.contains("tenant7")));
        std::fs::remove_dir_all(&root).ok();
    }

    /// A never-admitted tenant's status reads the on-disk registry pin:
    /// publishes (and rollbacks) to cold tenants show up in `list`.
    #[test]
    fn cold_tenant_status_reports_last_published_version() {
        let root = temproot("cold-version");
        let fleet = fleet_with(&root, 4, &[("frozen", 1)]);
        assert_eq!(fleet.status("frozen").unwrap().snapshot_version, 1);
        fleet.publish_model("frozen", &model(2), "second").unwrap();
        assert_eq!(fleet.resident_count(), 0, "publish to a cold tenant must not admit");
        assert_eq!(fleet.status("frozen").unwrap().snapshot_version, 2);
        // A tenant directory with no publishes yet genuinely is 0.
        std::fs::create_dir_all(fleet.tenants_root().join("empty")).unwrap();
        let fleet = TenantFleet::open(&root, FleetConfig::default()).unwrap();
        assert_eq!(fleet.status("empty").unwrap().snapshot_version, 0);
        std::fs::remove_dir_all(&root).ok();
    }

    /// Overlay-enabled fleets keep each tenant's uncompacted upserts
    /// across evict/re-admit: the overlay store belongs to the tenant,
    /// not to the resident incarnation.
    #[test]
    fn tenant_overlay_survives_eviction() {
        let root = temproot("overlay");
        let fleet = TenantFleet::open(
            &root,
            FleetConfig { resident_cap: 4, overlay: true, ..FleetConfig::default() },
        )
        .unwrap();
        fleet.publish_model("shop", &model(1), "seed").unwrap();

        let api = fleet.api("shop").unwrap();
        api.apply_upsert(&[KeyphraseRecord::new("fresh arrival", LeafId(42), 10, 1)]).unwrap();
        let served = api.serve_request(
            &InferRequest::new("fresh arrival", LeafId(42)).k(3).id(1).resolve_texts(true),
        );
        assert_eq!(served.keyphrases, ["fresh arrival"]);

        assert!(fleet.evict("shop").unwrap());
        let status = fleet.status("shop").unwrap();
        assert_eq!(status.overlay.as_ref().map(|o| o.depth), Some(1), "overlay outlives eviction");

        // Re-admission re-attaches the same overlay: still servable.
        let again = fleet.api("shop").unwrap();
        let served = again.serve_request(
            &InferRequest::new("fresh arrival", LeafId(42)).k(3).id(2).resolve_texts(true),
        );
        assert_eq!(served.keyphrases, ["fresh arrival"]);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn invalid_and_unknown_tenants_are_refused() {
        let root = temproot("names");
        let fleet = fleet_with(&root, 4, &[("ok", 1)]);
        for bad in ["", "a/b", "..", "a b", "é", &"x".repeat(65)] {
            assert!(
                matches!(fleet.api(bad), Err(FleetError::InvalidName(_))),
                "{bad:?} accepted"
            );
        }
        assert!(matches!(fleet.api("ghost"), Err(FleetError::UnknownTenant(_))));
        // A corrupt tenant names its snapshot file and leaves others serving.
        fleet.publish_model("sick", &model(2), "").unwrap();
        let path = fleet.tenants_root().join("sick").join("1").join("model.gexm");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = match fleet.api("sick") {
            Err(e) => e,
            Ok(_) => panic!("corrupt tenant admitted"),
        };
        assert!(matches!(err, FleetError::Tenant { .. }), "{err}");
        assert!(err.to_string().contains("sick"), "{err}");
        assert!(fleet.api("ok").is_ok());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn tenants_created_after_open_are_discovered() {
        let root = temproot("late");
        let fleet = fleet_with(&root, 4, &[]);
        assert!(fleet.names().is_empty());
        // Simulate another process creating a tenant registry on disk.
        let other = ModelRegistry::attach(fleet.tenants_root().join("newcomer")).unwrap();
        other.publish(&model(4), "").unwrap();
        drop(other);
        assert!(ask(&fleet.api("newcomer").unwrap(), 4).iter().all(|t| t.contains("tenant4")));
        std::fs::remove_dir_all(&root).ok();
    }
}

//! Sharded in-memory key-value store (the NuKV stand-in).
//!
//! Item id → recommended keyphrases. Sharded `RwLock`s keep the batch
//! writers and NRT writers from serializing behind one lock; readers (the
//! serving API) take shared locks only. Each record carries the
//! [`Outcome`] the inference reported when it was computed, so a store hit
//! can echo the same provenance a fresh inference would.

use graphex_core::Outcome;
use graphex_textkit::FxHashMap;
use parking_lot::RwLock;

/// Number of shards; power of two so the shard pick is a mask.
const SHARDS: usize = 16;

/// The stored record for one item.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRecs {
    pub keyphrases: Vec<String>,
    /// Monotonic version (bumped on every overwrite; lets tests and
    /// consumers detect refreshes).
    pub version: u32,
    /// Provenance of the inference that produced these keyphrases
    /// (exact-leaf graph vs. meta fallback).
    pub outcome: Outcome,
    /// Registry version of the model snapshot that computed these
    /// keyphrases (0 for a fixed engine without a registry). Lets serving
    /// detect records that outlived a hot swap or rollback.
    pub snapshot_version: u64,
    /// Overlay sequence the computing view had absorbed when this record
    /// was written (0 for writers that never saw an overlay: batch, NRT,
    /// fixed-engine tests). Serving compares it against the overlay's
    /// per-leaf last-write sequence: an upsert touching the record's leaf
    /// makes the record stale, so cached answers never hide fresh
    /// overlay content.
    pub overlay_epoch: u64,
}

/// Concurrent item → keyphrases store.
#[derive(Debug)]
pub struct KvStore {
    shards: Vec<RwLock<FxHashMap<u64, StoredRecs>>>,
}

impl Default for KvStore {
    fn default() -> Self {
        Self::new()
    }
}

impl KvStore {
    pub fn new() -> Self {
        Self { shards: (0..SHARDS).map(|_| RwLock::new(FxHashMap::default())).collect() }
    }

    #[inline]
    fn shard(&self, item: u64) -> &RwLock<FxHashMap<u64, StoredRecs>> {
        &self.shards[(item as usize) & (SHARDS - 1)]
    }

    /// Writes (or overwrites) an item's keyphrases, bumping the version.
    /// `snapshot_version` tags the record with the model snapshot that
    /// produced it (0 for a fixed engine without a registry). The overlay
    /// epoch is 0 — writers that compute against an overlay view use
    /// [`KvStore::put_tagged`].
    pub fn put(&self, item: u64, keyphrases: Vec<String>, outcome: Outcome, snapshot_version: u64) {
        self.put_tagged(item, keyphrases, outcome, snapshot_version, 0);
    }

    /// [`KvStore::put`] with an explicit overlay epoch: the overlay
    /// sequence the computing view had absorbed, so serving can detect
    /// records written before a later upsert touched their leaf.
    pub fn put_tagged(
        &self,
        item: u64,
        keyphrases: Vec<String>,
        outcome: Outcome,
        snapshot_version: u64,
        overlay_epoch: u64,
    ) {
        let mut shard = self.shard(item).write();
        match shard.get_mut(&item) {
            Some(existing) => {
                existing.version += 1;
                existing.keyphrases = keyphrases;
                existing.outcome = outcome;
                existing.snapshot_version = snapshot_version;
                existing.overlay_epoch = overlay_epoch;
            }
            None => {
                shard.insert(
                    item,
                    StoredRecs {
                        keyphrases,
                        version: 1,
                        outcome,
                        snapshot_version,
                        overlay_epoch,
                    },
                );
            }
        }
    }

    /// The serving read path.
    pub fn get(&self, item: u64) -> Option<StoredRecs> {
        self.shard(item).read().get(&item).cloned()
    }

    /// Presence check without cloning the record (cheap enough to call
    /// under another lock).
    pub fn contains(&self, item: u64) -> bool {
        self.shard(item).read().contains_key(&item)
    }

    /// The `snapshot_version` an item's record was computed by, without
    /// cloning the keyphrases (cheap enough to call under another lock).
    pub fn probe_snapshot(&self, item: u64) -> Option<u64> {
        self.shard(item).read().get(&item).map(|r| r.snapshot_version)
    }

    /// Both freshness tags of an item's record —
    /// `(snapshot_version, overlay_epoch)` — without cloning the
    /// keyphrases (cheap enough to call under another lock).
    pub fn probe_tags(&self, item: u64) -> Option<(u64, u64)> {
        self.shard(item).read().get(&item).map(|r| (r.snapshot_version, r.overlay_epoch))
    }

    /// Removes every record whose `snapshot_version` differs from
    /// `current` (records tagged 0 — fixed-engine writes — are kept).
    /// Returns how many were dropped. This is the eager counterpart to
    /// `ServingApi`'s lazy invalidate-on-swap policy: call it after a
    /// rollback to purge answers computed by a withdrawn snapshot.
    pub fn purge_stale(&self, current: u64) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            let mut shard = shard.write();
            let before = shard.len();
            shard.retain(|_, r| r.snapshot_version == 0 || r.snapshot_version == current);
            dropped += before - shard.len();
        }
        dropped
    }

    /// Number of items stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes an item (listing ended).
    pub fn remove(&self, item: u64) -> bool {
        self.shard(item).write().remove(&item).is_some()
    }

    /// Approximate stored bytes (keyphrase text only).
    pub fn approx_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .values()
                    .map(|r| r.keyphrases.iter().map(|k| k.len() + 8).sum::<usize>() + 8)
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let kv = KvStore::new();
        kv.put(7, vec!["a".into(), "b".into()], Outcome::ExactLeaf, 0);
        let got = kv.get(7).unwrap();
        assert_eq!(got.keyphrases, ["a", "b"]);
        assert_eq!(got.version, 1);
        assert_eq!(got.outcome, Outcome::ExactLeaf);
        assert!(kv.get(8).is_none());
    }

    #[test]
    fn overwrite_bumps_version_and_updates_outcome() {
        let kv = KvStore::new();
        kv.put(7, vec!["a".into()], Outcome::ExactLeaf, 3);
        kv.put(7, vec!["b".into()], Outcome::MetaFallback, 4);
        let got = kv.get(7).unwrap();
        assert_eq!(got.keyphrases, ["b"]);
        assert_eq!(got.version, 2);
        assert_eq!(got.outcome, Outcome::MetaFallback);
        assert_eq!(got.snapshot_version, 4);
        assert_eq!(kv.probe_snapshot(7), Some(4));
        assert_eq!(kv.probe_snapshot(8), None);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn purge_stale_drops_other_snapshots_but_keeps_untagged() {
        let kv = KvStore::new();
        kv.put(1, vec!["v1".into()], Outcome::ExactLeaf, 1);
        kv.put(2, vec!["v2".into()], Outcome::ExactLeaf, 2);
        kv.put(3, vec!["fixed".into()], Outcome::ExactLeaf, 0);
        // Roll back to snapshot 1: the v2 record is the only stale one.
        assert_eq!(kv.purge_stale(1), 1);
        assert!(kv.get(1).is_some());
        assert!(kv.get(2).is_none());
        assert!(kv.get(3).is_some(), "untagged fixed-engine records survive");
        assert_eq!(kv.purge_stale(1), 0);
    }

    #[test]
    fn put_tagged_carries_the_overlay_epoch() {
        let kv = KvStore::new();
        kv.put(1, vec!["plain".into()], Outcome::ExactLeaf, 2);
        assert_eq!(kv.get(1).unwrap().overlay_epoch, 0, "plain puts are untagged");
        assert_eq!(kv.probe_tags(1), Some((2, 0)));
        kv.put_tagged(1, vec!["tagged".into()], Outcome::ExactLeaf, 2, 17);
        let got = kv.get(1).unwrap();
        assert_eq!((got.version, got.overlay_epoch), (2, 17));
        assert_eq!(kv.probe_tags(1), Some((2, 17)));
        assert_eq!(kv.probe_tags(9), None);
    }

    #[test]
    fn remove_works() {
        let kv = KvStore::new();
        kv.put(1, vec!["x".into()], Outcome::ExactLeaf, 0);
        assert!(kv.remove(1));
        assert!(!kv.remove(1));
        assert!(kv.is_empty());
    }

    #[test]
    fn spread_across_shards() {
        let kv = KvStore::new();
        for i in 0..1000u64 {
            kv.put(i, vec![format!("kp{i}")], Outcome::ExactLeaf, 1);
        }
        assert_eq!(kv.len(), 1000);
        assert!(kv.approx_bytes() > 0);
        for i in 0..1000u64 {
            assert_eq!(kv.get(i).unwrap().keyphrases[0], format!("kp{i}"));
        }
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let kv = std::sync::Arc::new(KvStore::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let kv = kv.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let key = t * 1000 + i;
                    kv.put(key, vec![format!("{key}")], Outcome::ExactLeaf, 1);
                    assert!(kv.get(key).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(kv.len(), 2000);
    }
}

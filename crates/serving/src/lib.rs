//! # serving — the paper's Fig. 7 Batch/NRT serving architecture
//!
//! Sec. IV-H describes how GraphEx keyphrases reach sellers at eBay:
//!
//! * **Batch inference** on the Krylov ML platform — a full pass over all
//!   items, plus a *daily differential* over created/revised items, merged
//!   into **NuKV** (eBay's key-value store) and served through an inference
//!   API.
//! * **Near-real-time (NRT) inference** — item creation/revision events
//!   flow through a Flink window (deduplication + feature enrichment) into
//!   a Python scorer, so new listings get keyphrases within seconds.
//!
//! This crate reproduces that dataflow at process scale with the same
//! moving parts: a sharded in-memory [`KvStore`] (NuKV), a
//! [`BatchPipeline`] (full + differential batch), and an [`NrtService`]
//! (event channel + dedup window + worker pool). The integration tests
//! assert the property the architecture exists to provide: *batch and NRT
//! agree* — an item served through either path carries the same keyphrases.

//! A fourth moving part closes the production loop: the
//! [`ModelRegistry`] (module [`registry`]) manages versioned snapshot
//! directories and hot-swaps republished models under live traffic — the
//! daily-refresh half of Fig. 7 the first cut of this crate left out.
//! Serving, batch, and NRT all consume a [`registry::ModelWatch`] so a
//! `publish` or `rollback` propagates to every consumer without restart.

//! A fifth part opens the NRT path to *brand-new* items: the
//! [`OverlayStore`] (module [`overlay`]) layers a mutable per-leaf delta
//! over the immutable snapshot at query time — upserted records are
//! servable within one request of their ack, journaled for the next
//! delta-build compaction, and bounded by a byte cap that sheds writes
//! once compaction falls behind.

pub mod api;
pub mod batch;
pub mod fleet;
pub mod kv;
pub mod nrt;
pub mod overlay;
pub mod registry;

pub use api::{InFlightGuard, ServeSource, ServeStats, Served, ServingApi, SwapPolicy};
pub use batch::{BatchPipeline, BatchReport};
pub use fleet::{FleetConfig, FleetError, FleetResult, TenantFleet, TenantStatus};
pub use kv::KvStore;
pub use nrt::{ItemEvent, NrtConfig, NrtService, NrtStats};
pub use overlay::{
    DrainReport, OverlayError, OverlayJournal, OverlayStatus, OverlayStore, UpsertAck,
    DEFAULT_OVERLAY_CAP_BYTES,
};
pub use registry::{
    ActiveModel, ModelRegistry, ModelWatch, RegistryError, RegistryResult, SnapshotMeta,
};

//! Batch inference pipeline: the full pass and the daily differential.
//!
//! Paper Sec. IV-H: "The batch inference is done in two parts: 1) for all
//! items in eBay, and 2) daily differential, i.e. the difference of all new
//! items created/revised and then merged with the old existing items."
//! Results land in the KV store the serving API reads. The pipeline rides
//! [`graphex_core::parallel::batch_infer`] with one [`InferRequest`]
//! envelope per item, and the report tallies every item's
//! [`graphex_core::Outcome`] so a batch run says *why* items were
//! skipped, not just how many.

use crate::kv::KvStore;
use crate::registry::ModelWatch;
use graphex_core::parallel::batch_infer;
use graphex_core::{GraphExModel, InferRequest, LeafId, OutcomeCounts};

/// A batch work item (owned so pipelines can be fed from any source).
#[derive(Debug, Clone)]
pub struct BatchItem {
    pub id: u32,
    pub title: String,
    pub leaf: LeafId,
}

/// What a batch run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchReport {
    pub items_processed: usize,
    pub items_with_recommendations: usize,
    pub total_keyphrases: usize,
    /// Per-outcome tallies (`unknown_leaf` + `empty` = skipped items).
    pub outcomes: OutcomeCounts,
    pub elapsed_ms: u128,
    /// Registry version of the snapshot this run scored with (0 when the
    /// pipeline was built over a borrowed model instead of a watch).
    pub snapshot_version: u64,
}

/// The model a pipeline scores with: borrowed directly, or resolved from
/// a registry watch at the start of each run (so a long-lived pipeline
/// picks up republished snapshots between runs, while any single run is
/// scored by exactly one snapshot).
enum PipelineModel<'a> {
    Borrowed(&'a GraphExModel),
    Watched(ModelWatch),
}

/// Batch executor over a GraphEx model writing into a [`KvStore`].
pub struct BatchPipeline<'a> {
    model: PipelineModel<'a>,
    store: &'a KvStore,
    k: usize,
    threads: usize,
}

impl<'a> BatchPipeline<'a> {
    /// `threads = 0` uses all cores (the paper's batch node uses 70).
    pub fn new(model: &'a GraphExModel, store: &'a KvStore, k: usize, threads: usize) -> Self {
        Self { model: PipelineModel::Borrowed(model), store, k, threads }
    }

    /// Pipeline over a registry watch (see [`crate::ModelRegistry`]):
    /// each run resolves the active snapshot at its start.
    pub fn with_watch(watch: ModelWatch, store: &'a KvStore, k: usize, threads: usize) -> Self {
        Self { model: PipelineModel::Watched(watch), store, k, threads }
    }

    /// Full pass over `items` ("for all items in eBay").
    pub fn run_full(&self, items: &[BatchItem]) -> BatchReport {
        self.run(items)
    }

    /// Differential pass ("all new items created/revised, merged with the
    /// old existing items"): identical compute, but by contract callers pass
    /// only the changed items. Existing entries for other items are left
    /// untouched; changed items are overwritten (version bump).
    pub fn run_differential(&self, changed: &[BatchItem]) -> BatchReport {
        self.run(changed)
    }

    fn run(&self, items: &[BatchItem]) -> BatchReport {
        let start = std::time::Instant::now();
        // Resolve once per run: the held `Arc` pins the snapshot for the
        // entire pass even if a publish lands mid-run.
        let (active, snapshot_version);
        let model: &GraphExModel = match &self.model {
            PipelineModel::Borrowed(m) => {
                snapshot_version = 0;
                m
            }
            PipelineModel::Watched(watch) => {
                active = watch.current();
                snapshot_version = active.version;
                active.engine.model()
            }
        };
        let requests: Vec<InferRequest<'_>> = items
            .iter()
            .map(|i| {
                InferRequest::new(&i.title, i.leaf)
                    .k(self.k)
                    .id(u64::from(i.id))
                    .resolve_texts(true)
            })
            .collect();
        let responses = batch_infer(model, &requests, self.threads);
        let mut with_recs = 0usize;
        let mut total = 0usize;
        let mut outcomes = OutcomeCounts::default();
        for (item, response) in items.iter().zip(responses) {
            outcomes.record(response.outcome);
            if !response.is_servable() {
                continue;
            }
            with_recs += 1;
            total += response.texts.len();
            self.store.put(u64::from(item.id), response.texts, response.outcome, snapshot_version);
        }
        BatchReport {
            items_processed: items.len(),
            items_with_recommendations: with_recs,
            total_keyphrases: total,
            outcomes,
            elapsed_ms: start.elapsed().as_millis(),
            snapshot_version,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_core::{GraphExBuilder, GraphExConfig, KeyphraseRecord, Outcome};

    fn model() -> GraphExModel {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        GraphExBuilder::new(config)
            .add_records((0..20).map(|i| {
                KeyphraseRecord::new(format!("brand{i} gadget model{i}"), LeafId(i % 4), 50 + i, 5)
            }))
            .build()
            .unwrap()
    }

    fn items(n: u32) -> Vec<BatchItem> {
        (0..n)
            .map(|i| BatchItem {
                id: i,
                title: format!("brand{} gadget model{} pro", i % 20, i % 20),
                leaf: LeafId(i % 4),
            })
            .collect()
    }

    #[test]
    fn full_batch_fills_store() {
        let model = model();
        let store = KvStore::new();
        let pipeline = BatchPipeline::new(&model, &store, 10, 2);
        let batch = items(50);
        let report = pipeline.run_full(&batch);
        assert_eq!(report.items_processed, 50);
        assert_eq!(report.items_with_recommendations, 50);
        assert_eq!(report.outcomes.exact_leaf, 50);
        assert_eq!(store.len(), 50);
        assert!(report.total_keyphrases >= 50);
        for item in &batch {
            let recs = store.get(u64::from(item.id)).unwrap();
            assert!(!recs.keyphrases.is_empty());
            assert_eq!(recs.outcome, Outcome::ExactLeaf);
        }
    }

    #[test]
    fn differential_touches_only_changed() {
        let model = model();
        let store = KvStore::new();
        let pipeline = BatchPipeline::new(&model, &store, 10, 2);
        let batch = items(20);
        pipeline.run_full(&batch);
        let v_before: Vec<u32> =
            batch.iter().map(|i| store.get(u64::from(i.id)).unwrap().version).collect();

        // Revise items 0 and 1.
        let mut changed = vec![batch[0].clone(), batch[1].clone()];
        changed[0].title = "brand3 gadget model3 deluxe".into();
        changed[0].leaf = LeafId(3);
        let report = pipeline.run_differential(&changed);
        assert_eq!(report.items_processed, 2);

        assert_eq!(store.get(0).unwrap().version, v_before[0] + 1);
        assert_eq!(store.get(1).unwrap().version, v_before[1] + 1);
        for item in &batch[2..] {
            assert_eq!(store.get(u64::from(item.id)).unwrap().version, 1, "untouched item re-written");
        }
        // Revised title → revised keyphrases.
        assert!(store.get(0).unwrap().keyphrases.iter().any(|k| k.contains("model3")));
    }

    #[test]
    fn unknown_leaf_items_are_skipped_not_stored() {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        config.build_meta_fallback = false;
        let model = GraphExBuilder::new(config)
            .add_record(KeyphraseRecord::new("known phrase", LeafId(1), 10, 1))
            .build()
            .unwrap();
        let store = KvStore::new();
        let pipeline = BatchPipeline::new(&model, &store, 10, 1);
        let report = pipeline.run_full(&[BatchItem {
            id: 9,
            title: "known phrase item".into(),
            leaf: LeafId(99),
        }]);
        assert_eq!(report.items_with_recommendations, 0);
        assert_eq!(report.outcomes.unknown_leaf, 1);
        assert!(store.get(9).is_none());
    }

    #[test]
    fn empty_batch_report() {
        let model = model();
        let store = KvStore::new();
        let pipeline = BatchPipeline::new(&model, &store, 10, 0);
        let report = pipeline.run_full(&[]);
        assert_eq!(report.items_processed, 0);
        assert_eq!(report.total_keyphrases, 0);
        assert_eq!(report.outcomes.total(), 0);
    }
}

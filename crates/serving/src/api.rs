//! The serving read path: eBay's "inference API" over the KV store
//! (Fig. 7's right edge), with a read-through fallback.
//!
//! Sellers request keyphrases for an item; the API answers from the KV
//! store. A miss (item listed seconds ago, NRT still in flight, or a cold
//! path after a store wipe) triggers synchronous inference and a
//! write-back, so the caller never sees an empty answer for a servable
//! item. Counters expose the hit ratio operators watch.

use crate::kv::KvStore;
use graphex_core::{GraphExModel, InferenceParams, LeafId, Scratch};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where a response came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeSource {
    /// Precomputed by batch/NRT, read from the store.
    Store,
    /// Computed synchronously on miss and written back.
    ReadThrough,
    /// No recommendations derivable (unknown leaf without fallback, or no
    /// candidate keyphrases).
    None,
}

/// A served response.
#[derive(Debug, Clone, PartialEq)]
pub struct Served {
    pub keyphrases: Vec<String>,
    pub source: ServeSource,
}

/// Read-through serving facade.
pub struct ServingApi {
    model: Arc<GraphExModel>,
    store: Arc<KvStore>,
    params: InferenceParams,
    hits: AtomicU64,
    read_throughs: AtomicU64,
    misses: AtomicU64,
    scratch: parking_lot::Mutex<Scratch>,
}

/// Hit/miss counters snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    pub store_hits: u64,
    pub read_throughs: u64,
    pub unservable: u64,
}

impl ServingApi {
    pub fn new(model: Arc<GraphExModel>, store: Arc<KvStore>, k: usize) -> Self {
        Self {
            model,
            store,
            params: InferenceParams::with_k(k),
            hits: AtomicU64::new(0),
            read_throughs: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            scratch: parking_lot::Mutex::new(Scratch::new()),
        }
    }

    /// Serves keyphrases for an item, computing on store miss.
    pub fn serve(&self, item_id: u32, title: &str, leaf: LeafId) -> Served {
        if let Some(stored) = self.store.get(item_id) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Served { keyphrases: stored.keyphrases, source: ServeSource::Store };
        }
        let preds = {
            let mut scratch = self.scratch.lock();
            self.model.infer(title, leaf, &self.params, &mut scratch).unwrap_or_default()
        };
        if preds.is_empty() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Served { keyphrases: Vec::new(), source: ServeSource::None };
        }
        let texts: Vec<String> = preds
            .iter()
            .filter_map(|p| self.model.keyphrase_text(p.keyphrase))
            .map(str::to_string)
            .collect();
        self.store.put(item_id, texts.clone());
        self.read_throughs.fetch_add(1, Ordering::Relaxed);
        Served { keyphrases: texts, source: ServeSource::ReadThrough }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            store_hits: self.hits.load(Ordering::Relaxed),
            read_throughs: self.read_throughs.load(Ordering::Relaxed),
            unservable: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_core::{GraphExBuilder, GraphExConfig, KeyphraseRecord};

    fn model() -> Arc<GraphExModel> {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        config.build_meta_fallback = false;
        Arc::new(
            GraphExBuilder::new(config)
                .add_record(KeyphraseRecord::new("widget gadget pro", LeafId(1), 50, 5))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn store_hit_is_served_verbatim() {
        let store = Arc::new(KvStore::new());
        store.put(7, vec!["precomputed".into()]);
        let api = ServingApi::new(model(), store, 10);
        let served = api.serve(7, "widget gadget", LeafId(1));
        assert_eq!(served.source, ServeSource::Store);
        assert_eq!(served.keyphrases, ["precomputed"]);
        assert_eq!(api.stats().store_hits, 1);
    }

    #[test]
    fn miss_read_through_computes_and_writes_back() {
        let store = Arc::new(KvStore::new());
        let api = ServingApi::new(model(), store.clone(), 10);
        let served = api.serve(9, "widget gadget pro thing", LeafId(1));
        assert_eq!(served.source, ServeSource::ReadThrough);
        assert!(!served.keyphrases.is_empty());
        // Written back: second call hits the store with identical payload.
        let again = api.serve(9, "widget gadget pro thing", LeafId(1));
        assert_eq!(again.source, ServeSource::Store);
        assert_eq!(again.keyphrases, served.keyphrases);
        let stats = api.stats();
        assert_eq!((stats.store_hits, stats.read_throughs), (1, 1));
    }

    #[test]
    fn unservable_items_do_not_pollute_the_store() {
        let store = Arc::new(KvStore::new());
        let api = ServingApi::new(model(), store.clone(), 10);
        let served = api.serve(3, "no tokens match here", LeafId(999));
        assert_eq!(served.source, ServeSource::None);
        assert!(served.keyphrases.is_empty());
        assert!(store.get(3).is_none());
        assert_eq!(api.stats().unservable, 1);
    }

    #[test]
    fn concurrent_serving() {
        let store = Arc::new(KvStore::new());
        let api = Arc::new(ServingApi::new(model(), store, 10));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let api = api.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    let id = (t * 1000 + i) % 50; // force hit/miss mixture
                    let s = api.serve(id, "widget gadget pro", LeafId(1));
                    assert_ne!(s.source, ServeSource::None);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = api.stats();
        assert_eq!(stats.store_hits + stats.read_throughs, 800);
        assert!(stats.read_throughs >= 50); // each distinct id computed once-ish
    }
}

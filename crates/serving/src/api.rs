//! The serving read path: eBay's "inference API" over the KV store
//! (Fig. 7's right edge), with a read-through fallback.
//!
//! Sellers request keyphrases for an item; the API answers from the KV
//! store. A miss (item listed seconds ago, NRT still in flight, or a cold
//! path after a store wipe) triggers synchronous inference and a
//! write-back, so the caller never sees an empty answer for a servable
//! item. Requests are [`InferRequest`] envelopes — per-request `k` and
//! alignment ride through to inference — and every response carries the
//! [`Outcome`] that explains it; counters are keyed by both source and
//! outcome.
//!
//! Two concurrency properties the old design lacked, both load-bearing at
//! production fan-in:
//!
//! * **No global scratch lock.** Read-through inference draws a scratch
//!   from the shared [`Engine`] pool per call; concurrent misses infer in
//!   parallel instead of serializing behind one `Mutex<Scratch>` (measured
//!   by `crates/bench/benches/serving_read_path.rs`).
//! * **Single-flight read-through.** Concurrent misses on the *same* item
//!   coalesce: one caller (the leader) runs inference and writes back
//!   exactly once; the rest wait for the leader's answer. The KV version
//!   therefore bumps once per item, not once per concurrent caller.

use crate::kv::KvStore;
use crate::overlay::{DrainReport, OverlayError, OverlayStatus, OverlayStore, UpsertAck};
use crate::registry::ModelWatch;
use graphex_core::{
    Engine, GraphExModel, InferRequest, InferResponse, KeyphraseRecord, KeyphraseService, LeafId,
    Outcome,
};
use graphex_textkit::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Where a response came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeSource {
    /// Precomputed by batch/NRT, read from the store.
    Store,
    /// Computed synchronously on miss and written back.
    ReadThrough,
    /// Another caller's in-flight read-through produced a servable answer
    /// for this request (single-flight coalescing; nothing was recomputed
    /// or rewritten). An unservable leader answer keeps
    /// [`ServeSource::None`] for every coalesced caller too.
    Coalesced,
    /// Computed for an id-less request: served, but never stored.
    Direct,
    /// No recommendations derivable (unknown leaf without fallback, or no
    /// candidate keyphrases).
    None,
}

/// A served response.
#[derive(Debug, Clone, PartialEq)]
pub struct Served {
    pub keyphrases: Vec<String>,
    pub source: ServeSource,
    /// Inference provenance (echoed from the store on a hit).
    pub outcome: Outcome,
    /// Per-keyphrase ranking attributes, parallel to `keyphrases`, for
    /// responses computed by this call (read-through / coalesced /
    /// direct). Empty on store hits — the KV store holds texts only.
    pub predictions: Vec<graphex_core::Prediction>,
    /// Registry version of the model snapshot that *produced* these
    /// keyphrases: the computing snapshot for fresh answers, the stored
    /// record's tag for store hits (which may predate the serving
    /// snapshot under [`SwapPolicy::Serve`]). 0 = fixed engine without a
    /// registry, or an unservable answer.
    pub snapshot_version: u64,
    /// Overlay sequence the computing view had absorbed (0 when the api
    /// serves without an overlay, or on store hits written by
    /// overlay-blind writers). Write-backs tag the KV record with this so
    /// later upserts to the same leaf invalidate it.
    pub overlay_epoch: u64,
}

/// One in-flight read-through; followers block on `ready` until the leader
/// publishes the result.
#[derive(Default)]
struct Flight {
    result: Mutex<Option<Served>>,
    ready: Condvar,
}

impl Flight {
    fn publish(&self, served: Served) {
        *self.result.lock().unwrap_or_else(PoisonError::into_inner) = Some(served);
        self.ready.notify_all();
    }

    fn wait(&self) -> Served {
        let mut guard = self.result.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(served) = &*guard {
                return served.clone();
            }
            guard = self.ready.wait(guard).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// What to do with KV records computed by a *different* model snapshot
/// than the one serving now (after a hot swap or rollback).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwapPolicy {
    /// Serve cached answers regardless of the snapshot that computed them
    /// (the paper's Fig. 7 behaviour: refresh rides the next batch/NRT
    /// pass). This is the default.
    #[default]
    Serve,
    /// Treat a store hit tagged with another `snapshot_version` as a miss
    /// and recompute through the single-flight read-through, so cached
    /// keyphrases cannot outlive a model rollback indefinitely. Records
    /// tagged 0 (fixed-engine writes) are always served.
    Invalidate,
}

/// Read-through serving facade: a [`KeyphraseService`] backed by the KV
/// store with an [`Engine`] behind it.
///
/// The engine is resolved through a [`ModelWatch`] per computation, so an
/// api constructed over a [`crate::ModelRegistry`] picks up hot-swapped
/// snapshots without restart — requests already inside `compute` finish
/// on the model they started with ([`ServeStats::snapshot_version`] says
/// which model is serving now).
pub struct ServingApi {
    watch: ModelWatch,
    store: Arc<KvStore>,
    /// NRT overlay: mutable per-leaf deltas consulted by the read path
    /// (None = classic snapshot-only serving).
    overlay: Option<Arc<OverlayStore>>,
    /// Registry version the overlay's views were last composed against;
    /// a hot swap triggers a rebase so overlay answers always layer over
    /// the *serving* snapshot.
    overlay_base: AtomicU64,
    default_k: usize,
    swap_policy: SwapPolicy,
    store_hits: AtomicU64,
    read_throughs: AtomicU64,
    coalesced: AtomicU64,
    direct: AtomicU64,
    unservable: AtomicU64,
    /// Store hits bypassed because their snapshot tag was stale
    /// ([`SwapPolicy::Invalidate`] only).
    invalidated: AtomicU64,
    /// Store hits bypassed because an overlay upsert touched their leaf
    /// after the record was written.
    overlay_invalidated: AtomicU64,
    /// Requests refused upstream by admission control (recorded by a
    /// network frontend via [`ServingApi::note_shed`]).
    shed: AtomicU64,
    /// Requests answered with a deadline-exceeded error upstream
    /// (recorded via [`ServingApi::note_deadline_exceeded`]).
    deadline_exceeded: AtomicU64,
    /// Requests currently executing (gauge; see
    /// [`ServingApi::begin_request`]).
    in_flight_gauge: AtomicU64,
    /// Responses by [`Outcome::index`].
    outcomes: [AtomicU64; 4],
    /// item id → in-flight read-through (single-flight).
    inflight: Mutex<FxHashMap<u64, Arc<Flight>>>,
}

/// Counters snapshot, keyed by source and by [`Outcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    pub store_hits: u64,
    pub read_throughs: u64,
    /// Requests answered by another caller's in-flight inference.
    pub coalesced: u64,
    /// Id-less requests computed without store interaction.
    pub direct: u64,
    pub unservable: u64,
    /// Store hits recomputed because their record was tagged with a
    /// different model snapshot ([`SwapPolicy::Invalidate`] only).
    pub invalidated: u64,
    /// Store hits recomputed because an overlay upsert touched their
    /// leaf after the record was written (overlay serving only).
    pub overlay_invalidated: u64,
    /// Requests refused by admission control (load shed, e.g. HTTP 429).
    pub shed: u64,
    /// Requests that missed their deadline (e.g. HTTP 503).
    pub deadline_exceeded: u64,
    /// Requests executing right now (gauge, not a counter).
    pub in_flight: u64,
    /// Every response tallied by its inference outcome.
    pub outcomes: graphex_core::OutcomeCounts,
    /// Registry version of the model serving right now (0 when the api
    /// was built over a fixed model instead of a registry watch).
    pub snapshot_version: u64,
    /// Hot swaps observed since the api's model source went live.
    pub model_swaps: u64,
}

impl ServeStats {
    /// Folds another snapshot's counters into this one — how the tenant
    /// fleet carries stats across evict/re-admit cycles (each resident
    /// incarnation gets a fresh `ServingApi`, so its counters restart
    /// from zero).
    ///
    /// All counters (including per-outcome tallies and `model_swaps`)
    /// add; `in_flight` adds too, which is only meaningful when `other`
    /// is a *live* snapshot (an evicted incarnation's gauge has
    /// drained to ~0); `snapshot_version` takes `other`'s value when it
    /// has one, since "latest incarnation" is the version that matters.
    pub fn absorb(&mut self, other: &ServeStats) {
        self.store_hits += other.store_hits;
        self.read_throughs += other.read_throughs;
        self.coalesced += other.coalesced;
        self.direct += other.direct;
        self.unservable += other.unservable;
        self.invalidated += other.invalidated;
        self.overlay_invalidated += other.overlay_invalidated;
        self.shed += other.shed;
        self.deadline_exceeded += other.deadline_exceeded;
        self.in_flight += other.in_flight;
        self.outcomes.exact_leaf += other.outcomes.exact_leaf;
        self.outcomes.meta_fallback += other.outcomes.meta_fallback;
        self.outcomes.unknown_leaf += other.outcomes.unknown_leaf;
        self.outcomes.empty += other.outcomes.empty;
        self.model_swaps += other.model_swaps;
        if other.snapshot_version != 0 {
            self.snapshot_version = other.snapshot_version;
        }
    }
}

impl ServingApi {
    /// Serving facade over a shared model; `default_k` applies to
    /// [`ServingApi::serve`] calls (envelope requests carry their own `k`).
    pub fn new(model: Arc<GraphExModel>, store: Arc<KvStore>, default_k: usize) -> Self {
        Self::with_engine(Engine::new(model), store, default_k)
    }

    /// Serving facade sharing an existing engine (and its scratch pool).
    pub fn with_engine(engine: Engine, store: Arc<KvStore>, default_k: usize) -> Self {
        Self::with_watch(ModelWatch::fixed(engine), store, default_k)
    }

    /// Serving facade over a registry watch: republished snapshots swap in
    /// live (get one from [`crate::ModelRegistry::watch`]).
    pub fn with_watch(watch: ModelWatch, store: Arc<KvStore>, default_k: usize) -> Self {
        Self {
            watch,
            store,
            overlay: None,
            overlay_base: AtomicU64::new(0),
            default_k,
            swap_policy: SwapPolicy::default(),
            store_hits: AtomicU64::new(0),
            read_throughs: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            direct: AtomicU64::new(0),
            unservable: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            overlay_invalidated: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            in_flight_gauge: AtomicU64::new(0),
            outcomes: Default::default(),
            inflight: Mutex::new(FxHashMap::default()),
        }
    }

    /// Sets the [`SwapPolicy`] (builder style; call before sharing the
    /// api). The default is [`SwapPolicy::Serve`].
    pub fn swap_policy(mut self, policy: SwapPolicy) -> Self {
        self.swap_policy = policy;
        self
    }

    /// Attaches an [`OverlayStore`] (builder style; call before sharing
    /// the api): upserts become servable through
    /// [`ServingApi::apply_upsert`], and the read path consults the
    /// overlay view alongside the base snapshot.
    pub fn with_overlay(mut self, overlay: Arc<OverlayStore>) -> Self {
        self.overlay_base = AtomicU64::new(self.watch.version());
        // An overlay handed over with pending entries (tenant re-admit
        // after eviction) was composed against whatever model served
        // last; recompose over the snapshot *this* api watches.
        if !overlay.view().is_empty() {
            overlay.rebase(self.watch.current().engine.model());
        }
        self.overlay = Some(overlay);
        self
    }

    /// The attached overlay store, if overlay serving is enabled.
    pub fn overlay(&self) -> Option<&Arc<OverlayStore>> {
        self.overlay.as_ref()
    }

    /// Applies an upsert batch to the overlay: records become servable
    /// before this returns (the swapped-in view is what the next request
    /// reads), and every cached KV answer for a touched leaf is
    /// invalidated lazily via its overlay epoch tag.
    ///
    /// Errors with [`OverlayError::CapExceeded`] when the journal is at
    /// its byte cap (HTTP frontends translate this to 429 +
    /// `Retry-After`) and [`OverlayError::Invalid`] for malformed
    /// records or when no overlay is attached.
    pub fn apply_upsert(&self, records: &[KeyphraseRecord]) -> Result<UpsertAck, OverlayError> {
        let overlay = self
            .overlay
            .as_ref()
            .ok_or_else(|| OverlayError::Invalid("overlay serving is not enabled".into()))?;
        let active = self.watch.current();
        self.rebase_overlay_if_swapped(overlay, &active);
        overlay.apply(active.engine.model(), records)
    }

    /// Overlay counters and depth (None when no overlay is attached).
    pub fn overlay_status(&self) -> Option<OverlayStatus> {
        self.overlay.as_ref().map(|o| o.status())
    }

    /// Exports the overlay journal for compaction (None when no overlay
    /// is attached): the serialized records a delta build folds into the
    /// next snapshot.
    pub fn export_overlay_journal(&self) -> Option<crate::overlay::OverlayJournal> {
        self.overlay.as_ref().map(|o| o.export_journal())
    }

    /// Drains overlay entries with sequence ≤ `upto` after a compaction
    /// publish absorbed them into the base snapshot (None when no
    /// overlay is attached). Late upserts that raced the compaction stay
    /// in the overlay and keep serving.
    pub fn drain_overlay(&self, upto: u64) -> Option<DrainReport> {
        let overlay = self.overlay.as_ref()?;
        let active = self.watch.current();
        // Record the base version *before* draining so a publish that
        // raced in is treated as already-rebased (drain recomposes
        // against it anyway).
        self.overlay_base.store(active.version, Ordering::Relaxed);
        Some(overlay.drain(active.engine.model(), upto))
    }

    /// Recomposes overlay views over the current snapshot if a hot swap
    /// landed since they were last built. Cheap when nothing changed
    /// (one relaxed load); the compare-exchange makes concurrent
    /// detectors rebase once.
    fn rebase_overlay_if_swapped(&self, overlay: &OverlayStore, active: &crate::registry::ActiveModel) {
        let seen = self.overlay_base.load(Ordering::Relaxed);
        if seen != active.version
            && self
                .overlay_base
                .compare_exchange(seen, active.version, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            overlay.rebase(active.engine.model());
        }
    }

    /// Records one admission-control refusal (load shed). Network
    /// frontends call this when the accept queue is saturated, so the
    /// counter shows up in [`ServeStats`] next to the serving counters.
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one deadline-exceeded refusal.
    pub fn note_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Registry version of the model serving right now (one watch read;
    /// cheaper than assembling a full [`ServeStats`] snapshot).
    pub fn snapshot_version(&self) -> u64 {
        self.watch.version()
    }

    /// Marks one request as executing until the returned guard drops;
    /// [`ServeStats::in_flight`] is the number of live guards.
    pub fn begin_request(&self) -> InFlightGuard<'_> {
        self.in_flight_gauge.fetch_add(1, Ordering::Relaxed);
        InFlightGuard { api: self }
    }

    /// The engine serving read-through inference *right now* (a cheap
    /// clone of the watched model's engine; holders keep that snapshot
    /// alive across swaps).
    pub fn engine(&self) -> Engine {
        self.watch.current().engine.clone()
    }

    /// Serves keyphrases for an item, computing on store miss — the
    /// classic three-argument entry, now a thin wrapper over
    /// [`ServingApi::serve_request`].
    pub fn serve(&self, item_id: u64, title: &str, leaf: LeafId) -> Served {
        self.serve_request(
            &InferRequest::new(title, leaf).k(self.default_k).id(item_id).resolve_texts(true),
        )
    }

    /// Serves one envelope request.
    ///
    /// Requests with an [`InferRequest::id`] use it as the KV key: store
    /// hit, else single-flight read-through with write-back. Requests
    /// without an id are computed directly and never stored (there is no
    /// key to store them under).
    ///
    /// Cache semantics for per-request overrides: the store holds *one*
    /// precomputed answer per item, so a store hit (or a coalesced
    /// answer) serves that answer truncated to the request's `k`; a `k`
    /// larger than what was stored, or an alignment override, cannot
    /// re-rank a cached answer. Send the request id-less to force a
    /// fresh computation with full override fidelity.
    pub fn serve_request(&self, request: &InferRequest<'_>) -> Served {
        self.serve_request_traced(request, &mut graphex_core::StageTrace::disabled())
    }

    /// [`ServingApi::serve_request`] with stage spans recorded into
    /// `trace`: KV lookup (detail 1 = fresh hit served, 0 = miss/stale),
    /// single-flight wait, and the inference stages via
    /// [`graphex_core::Engine::infer_traced`]. A disabled trace makes
    /// this the plain untraced path.
    pub fn serve_request_traced(
        &self,
        request: &InferRequest<'_>,
        trace: &mut graphex_core::StageTrace,
    ) -> Served {
        let Some(item) = request.id else {
            let served = self.compute_traced(request, trace);
            self.count(&served);
            return served;
        };

        // Miss path: elect a leader for this item, or join an existing
        // flight. The loop re-enters only when the double-check sees a
        // completed leader, in which case the next store read hits.
        enum Role {
            Leader(Arc<Flight>),
            Follower(Arc<Flight>),
        }
        loop {
            // Resolve the serving version once per pass (and only under
            // the invalidate policy), so the freshness probe below never
            // touches the watch's RwLock inside the inflight mutex.
            let current = match self.swap_policy {
                SwapPolicy::Serve => 0,
                SwapPolicy::Invalidate => self.watch.version(),
            };
            let kv_start = trace.clock();
            let mut fresh_hit = None;
            if let Some(stored) = self.store.get(item) {
                if !self.record_is_fresh(stored.snapshot_version, current) {
                    // Stale under SwapPolicy::Invalidate: fall through to
                    // the read-through path, which overwrites the record.
                    self.invalidated.fetch_add(1, Ordering::Relaxed);
                } else if !self.overlay_fresh(stored.overlay_epoch, request.leaf) {
                    // An upsert touched this leaf after the record was
                    // written: recompute so the answer reflects the
                    // overlay (the write-back re-tags the record).
                    self.overlay_invalidated.fetch_add(1, Ordering::Relaxed);
                } else {
                    fresh_hit = Some(stored);
                }
            }
            match fresh_hit {
                Some(stored) => {
                    trace.record_detail(graphex_core::Stage::KvLookup, kv_start, 1);
                    return self.count_hit(stored, request.k);
                }
                None => trace.record_detail(graphex_core::Stage::KvLookup, kv_start, 0),
            }
            let role = {
                let mut inflight = self.lock_inflight();
                // Double-check under the map lock: the leader writes the
                // store *before* clearing its flight entry, so a concurrent
                // completion is visible here. Only a snapshot-tag probe runs
                // under the global lock — the record fetch happens
                // lock-free on the next pass, so concurrent misses on
                // distinct items don't serialize on a store clone.
                // A present-but-stale record does *not* `continue` (the
                // next pass would see it stale again and loop forever); it
                // proceeds to leader election so it gets overwritten.
                // Overlay staleness joins the probe for the same reason.
                match self.store.probe_tags(item) {
                    Some((tag, epoch))
                        if self.record_is_fresh(tag, current)
                            && self.overlay_fresh(epoch, request.leaf) =>
                    {
                        continue
                    }
                    _ => {}
                }
                if let Some(flight) = inflight.get(&item) {
                    Role::Follower(Arc::clone(flight))
                } else {
                    let flight = Arc::new(Flight::default());
                    inflight.insert(item, Arc::clone(&flight));
                    Role::Leader(flight)
                }
            };

            return match role {
                Role::Follower(flight) => {
                    let wait_start = trace.clock();
                    let mut served = flight.wait();
                    trace.record(graphex_core::Stage::SingleFlightWait, wait_start);
                    // Only a servable answer counts as coalescing;
                    // unservable stays `None` so callers' fallback logic is
                    // deterministic.
                    if served.source != ServeSource::None {
                        served.source = ServeSource::Coalesced;
                    }
                    // The leader computed with its own k; honour this
                    // request's budget where possible (see docs above).
                    served.keyphrases.truncate(request.k);
                    served.predictions.truncate(request.k);
                    self.count(&served);
                    served
                }
                Role::Leader(flight) => {
                    // Panic safety: if inference panics, the guard clears
                    // the flight entry and publishes an unservable answer,
                    // so followers unblock and later requests retry instead
                    // of joining a wedged flight forever.
                    let mut guard = LeaderGuard { api: self, item, flight: &flight, armed: true };
                    let served = self.compute_traced(request, trace);
                    if served.outcome.is_servable() {
                        self.store.put_tagged(
                            item,
                            served.keyphrases.clone(),
                            served.outcome,
                            served.snapshot_version,
                            served.overlay_epoch,
                        );
                    }
                    // Store write is published; only now may new callers
                    // miss the flight entry (they re-check the store under
                    // the lock).
                    self.lock_inflight().remove(&item);
                    flight.publish(served.clone());
                    guard.armed = false;
                    self.count(&served);
                    served
                }
            };
        }
    }

    /// Serves a slice of requests, in order (Fig. 7's multi-item inference
    /// API call). Store hits are answered inline; the misses ride the same
    /// single-flight read-through path as [`ServingApi::serve_request`].
    pub fn serve_batch(&self, requests: &[InferRequest<'_>]) -> Vec<Served> {
        requests.iter().map(|r| self.serve_request(r)).collect()
    }

    /// [`ServingApi::serve_batch`] with one shared trace: each entry's
    /// stage spans append to the same buffer (one trace per envelope).
    pub fn serve_batch_traced(
        &self,
        requests: &[InferRequest<'_>],
        trace: &mut graphex_core::StageTrace,
    ) -> Vec<Served> {
        requests.iter().map(|r| self.serve_request_traced(r, trace)).collect()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServeStats {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServeStats {
            store_hits: load(&self.store_hits),
            read_throughs: load(&self.read_throughs),
            coalesced: load(&self.coalesced),
            direct: load(&self.direct),
            unservable: load(&self.unservable),
            invalidated: load(&self.invalidated),
            overlay_invalidated: load(&self.overlay_invalidated),
            shed: load(&self.shed),
            deadline_exceeded: load(&self.deadline_exceeded),
            in_flight: load(&self.in_flight_gauge),
            outcomes: graphex_core::OutcomeCounts {
                exact_leaf: load(&self.outcomes[Outcome::ExactLeaf.index()]),
                meta_fallback: load(&self.outcomes[Outcome::MetaFallback.index()]),
                unknown_leaf: load(&self.outcomes[Outcome::UnknownLeaf.index()]),
                empty: load(&self.outcomes[Outcome::Empty.index()]),
            },
            snapshot_version: self.watch.version(),
            model_swaps: self.watch.swap_count(),
        }
    }

    /// Whether a store record with this snapshot tag may be served under
    /// the configured [`SwapPolicy`]. Untagged records (0) always may;
    /// `current` is the serving version the caller resolved up front
    /// (unused under [`SwapPolicy::Serve`]).
    fn record_is_fresh(&self, record_snapshot: u64, current: u64) -> bool {
        match self.swap_policy {
            SwapPolicy::Serve => true,
            SwapPolicy::Invalidate => record_snapshot == 0 || record_snapshot == current,
        }
    }

    /// Whether a store record's overlay epoch is at least as new as the
    /// last upsert touching the request's leaf. Trivially true without an
    /// overlay; `leaf_seq` is monotone and survives drains, so records
    /// written by overlay-blind writers (epoch 0) go stale the moment an
    /// upsert touches their leaf, and never before.
    fn overlay_fresh(&self, record_epoch: u64, leaf: LeafId) -> bool {
        match &self.overlay {
            None => true,
            Some(overlay) => record_epoch >= overlay.leaf_seq(leaf),
        }
    }

    /// Pure inference through the engine pool (no store interaction).
    /// Text resolution is forced only when the answer can reach the store
    /// (the store holds texts); id-less requests keep the caller's
    /// `resolve_texts` choice, matching the `Engine` trait behaviour.
    /// The returned [`Served::snapshot_version`] is the snapshot the
    /// inference actually ran on, so the write-back tags the record with
    /// the producing model even if a swap lands between compute and put.
    fn compute_traced(
        &self,
        request: &InferRequest<'_>,
        trace: &mut graphex_core::StageTrace,
    ) -> Served {
        let request =
            if request.id.is_some() { request.resolve_texts(true) } else { *request };
        // Resolve the model per computation: this is the hot-swap seam.
        // The `Arc` held here pins the snapshot for the whole inference.
        let active = self.watch.current();
        // Capture the overlay view (and its epoch) *before* inferring:
        // the epoch tags the write-back, and tagging with a view captured
        // after inference could claim upserts the answer never saw.
        let (view, overlay_epoch) = match &self.overlay {
            Some(overlay) => {
                self.rebase_overlay_if_swapped(overlay, &active);
                let view = overlay.view();
                let epoch = view.seq();
                (Some(view), epoch)
            }
            None => (None, 0),
        };
        let response = active.engine.infer_traced(&request, view.as_deref(), trace);
        let source = if !response.outcome.is_servable() {
            ServeSource::None
        } else if request.id.is_some() {
            ServeSource::ReadThrough
        } else {
            ServeSource::Direct
        };
        Served {
            keyphrases: response.texts,
            source,
            outcome: response.outcome,
            predictions: response.predictions,
            snapshot_version: active.version,
            overlay_epoch,
        }
    }

    fn count_hit(&self, stored: crate::kv::StoredRecs, k: usize) -> Served {
        let mut keyphrases = stored.keyphrases;
        keyphrases.truncate(k);
        let served = Served {
            keyphrases,
            source: ServeSource::Store,
            outcome: stored.outcome,
            predictions: Vec::new(),
            snapshot_version: stored.snapshot_version,
            overlay_epoch: stored.overlay_epoch,
        };
        self.count(&served);
        served
    }

    fn count(&self, served: &Served) {
        let counter = match served.source {
            ServeSource::Store => &self.store_hits,
            ServeSource::ReadThrough => &self.read_throughs,
            ServeSource::Coalesced => &self.coalesced,
            ServeSource::Direct => &self.direct,
            ServeSource::None => &self.unservable,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.outcomes[served.outcome.index()].fetch_add(1, Ordering::Relaxed);
    }

    fn lock_inflight(&self) -> std::sync::MutexGuard<'_, FxHashMap<u64, Arc<Flight>>> {
        self.inflight.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII marker for one executing request (see
/// [`ServingApi::begin_request`]): decrements the in-flight gauge on drop,
/// including on unwind.
pub struct InFlightGuard<'a> {
    api: &'a ServingApi,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.api.in_flight_gauge.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Unwinding-safety net for the single-flight leader (see
/// [`ServingApi::serve_request`]): on panic, clear the in-flight entry and
/// wake followers with an unservable answer rather than wedging the item.
struct LeaderGuard<'a> {
    api: &'a ServingApi,
    item: u64,
    flight: &'a Flight,
    armed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.api.lock_inflight().remove(&self.item);
            self.flight.publish(Served {
                keyphrases: Vec::new(),
                source: ServeSource::None,
                outcome: Outcome::Empty,
                predictions: Vec::new(),
                snapshot_version: 0,
                overlay_epoch: 0,
            });
        }
    }
}

impl KeyphraseService for ServingApi {
    /// Store-backed inference: freshly computed answers (read-through /
    /// coalesced / direct) carry full prediction attributes; store hits
    /// carry texts only — the KV store holds strings, not
    /// [`graphex_core::Prediction`]s.
    fn infer(&self, request: &InferRequest<'_>) -> InferResponse {
        let served = self.serve_request(request);
        InferResponse {
            id: request.id,
            outcome: served.outcome,
            predictions: served.predictions,
            texts: served.keyphrases,
        }
    }

    fn infer_batch(&self, requests: &[InferRequest<'_>]) -> Vec<InferResponse> {
        requests.iter().map(|r| self.infer(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_core::{GraphExBuilder, GraphExConfig, KeyphraseRecord};

    fn model() -> Arc<GraphExModel> {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        config.build_meta_fallback = false;
        Arc::new(
            GraphExBuilder::new(config)
                .add_record(KeyphraseRecord::new("widget gadget pro", LeafId(1), 50, 5))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn store_hit_is_served_verbatim() {
        let store = Arc::new(KvStore::new());
        store.put(7, vec!["precomputed".into()], Outcome::ExactLeaf, 0);
        let api = ServingApi::new(model(), store, 10);
        let served = api.serve(7, "widget gadget", LeafId(1));
        assert_eq!(served.source, ServeSource::Store);
        assert_eq!(served.outcome, Outcome::ExactLeaf);
        assert_eq!(served.keyphrases, ["precomputed"]);
        assert_eq!(api.stats().store_hits, 1);
        assert_eq!(api.stats().outcomes.exact_leaf, 1);
    }

    #[test]
    fn miss_read_through_computes_and_writes_back() {
        let store = Arc::new(KvStore::new());
        let api = ServingApi::new(model(), store.clone(), 10);
        let served = api.serve(9, "widget gadget pro thing", LeafId(1));
        assert_eq!(served.source, ServeSource::ReadThrough);
        assert_eq!(served.outcome, Outcome::ExactLeaf);
        assert!(!served.keyphrases.is_empty());
        // Written back: second call hits the store with identical payload.
        let again = api.serve(9, "widget gadget pro thing", LeafId(1));
        assert_eq!(again.source, ServeSource::Store);
        assert_eq!(again.keyphrases, served.keyphrases);
        assert_eq!(again.outcome, served.outcome);
        let stats = api.stats();
        assert_eq!((stats.store_hits, stats.read_throughs), (1, 1));
        assert_eq!(stats.outcomes.exact_leaf, 2);
    }

    #[test]
    fn unservable_items_do_not_pollute_the_store() {
        let store = Arc::new(KvStore::new());
        let api = ServingApi::new(model(), store.clone(), 10);
        let served = api.serve(3, "no tokens match here", LeafId(999));
        assert_eq!(served.source, ServeSource::None);
        assert_eq!(served.outcome, Outcome::UnknownLeaf);
        assert!(served.keyphrases.is_empty());
        assert!(store.get(3).is_none());
        let stats = api.stats();
        assert_eq!(stats.unservable, 1);
        assert_eq!(stats.outcomes.unknown_leaf, 1);
    }

    #[test]
    fn per_request_k_overrides_the_default() {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        let model = Arc::new(
            GraphExBuilder::new(config)
                .add_records(vec![
                    KeyphraseRecord::new("widget gadget", LeafId(1), 90, 5),
                    KeyphraseRecord::new("widget gadget pro", LeafId(1), 50, 5),
                    KeyphraseRecord::new("widget gadget pro max", LeafId(1), 30, 5),
                ])
                .build()
                .unwrap(),
        );
        let api = ServingApi::new(model, Arc::new(KvStore::new()), 10);
        let one = api
            .serve_request(&InferRequest::new("widget gadget pro max", LeafId(1)).k(1).id(1));
        assert_eq!(one.keyphrases.len(), 1);
        let all = api
            .serve_request(&InferRequest::new("widget gadget pro max", LeafId(1)).k(10).id(2));
        assert_eq!(all.keyphrases.len(), 3);
    }

    #[test]
    fn store_hit_truncates_to_request_k() {
        let store = Arc::new(KvStore::new());
        store.put(7, vec!["a".into(), "b".into(), "c".into()], Outcome::ExactLeaf, 0);
        let api = ServingApi::new(model(), store, 10);
        let one = api.serve_request(&InferRequest::new("ignored", LeafId(1)).k(1).id(7));
        assert_eq!(one.source, ServeSource::Store);
        assert_eq!(one.keyphrases, ["a"]);
        // k larger than what was stored serves everything stored.
        let all = api.serve_request(&InferRequest::new("ignored", LeafId(1)).k(10).id(7));
        assert_eq!(all.keyphrases, ["a", "b", "c"]);
    }

    #[test]
    fn computed_answers_carry_prediction_attributes() {
        let api = ServingApi::new(model(), Arc::new(KvStore::new()), 10);
        let fresh = api.serve_request(&InferRequest::new("widget gadget pro", LeafId(1)).k(5).id(4));
        assert_eq!(fresh.source, ServeSource::ReadThrough);
        assert_eq!(fresh.predictions.len(), fresh.keyphrases.len());
        assert!(fresh.predictions[0].matched > 0);
        // The same item served again comes from the store: texts only.
        let hit = api.serve_request(&InferRequest::new("widget gadget pro", LeafId(1)).k(5).id(4));
        assert_eq!(hit.source, ServeSource::Store);
        assert!(hit.predictions.is_empty());
        assert_eq!(hit.keyphrases, fresh.keyphrases);
    }

    #[test]
    fn idless_requests_are_served_but_never_stored() {
        let store = Arc::new(KvStore::new());
        let api = ServingApi::new(model(), store.clone(), 10);
        let served = api.serve_request(
            &InferRequest::new("widget gadget pro", LeafId(1)).k(5).resolve_texts(true),
        );
        assert_eq!(served.source, ServeSource::Direct);
        assert!(!served.keyphrases.is_empty());
        assert!(store.is_empty());
        assert_eq!(api.stats().direct, 1);
        // Without resolve_texts, id-less requests honour the caller's
        // choice (same contract as the raw Engine): predictions only.
        let ids_only = api.serve_request(&InferRequest::new("widget gadget pro", LeafId(1)).k(5));
        assert!(ids_only.keyphrases.is_empty());
        assert!(!ids_only.predictions.is_empty());
        assert_eq!(ids_only.outcome, Outcome::ExactLeaf);
    }

    #[test]
    fn serve_batch_mixes_hits_and_read_throughs() {
        let store = Arc::new(KvStore::new());
        store.put(1, vec!["stored".into()], Outcome::ExactLeaf, 0);
        let api = ServingApi::new(model(), store, 10);
        let requests = [
            InferRequest::new("irrelevant title", LeafId(1)).k(5).id(1), // hit
            InferRequest::new("widget gadget pro", LeafId(1)).k(5).id(2), // read-through
            InferRequest::new("nothing matches", LeafId(999)).k(5).id(3), // unservable
        ];
        let served = api.serve_batch(&requests);
        assert_eq!(served[0].source, ServeSource::Store);
        assert_eq!(served[0].keyphrases, ["stored"]);
        assert_eq!(served[1].source, ServeSource::ReadThrough);
        assert_eq!(served[2].source, ServeSource::None);
        let stats = api.stats();
        assert_eq!((stats.store_hits, stats.read_throughs, stats.unservable), (1, 1, 1));
    }

    #[test]
    fn keyphrase_service_trait_surface() {
        let store = Arc::new(KvStore::new());
        let api = ServingApi::new(model(), store, 10);
        let service: &dyn KeyphraseService = &api;
        let responses = service.infer_batch(&[
            InferRequest::new("widget gadget pro", LeafId(1)).k(5).id(11),
            InferRequest::new("nothing", LeafId(999)).k(5).id(12),
        ]);
        assert_eq!(responses[0].outcome, Outcome::ExactLeaf);
        assert_eq!(responses[0].id, Some(11));
        assert!(!responses[0].texts.is_empty());
        assert_eq!(responses[1].outcome, Outcome::UnknownLeaf);
        assert!(responses[1].is_empty());
    }

    #[test]
    fn concurrent_serving() {
        let store = Arc::new(KvStore::new());
        let api = Arc::new(ServingApi::new(model(), store, 10));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let api = api.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let id = (t * 1000 + i) % 50; // force hit/miss mixture
                    let s = api.serve(id, "widget gadget pro", LeafId(1));
                    assert_ne!(s.source, ServeSource::None);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = api.stats();
        assert_eq!(
            stats.store_hits + stats.read_throughs + stats.coalesced,
            800,
            "every request answered from store, read-through, or coalescing"
        );
        assert_eq!(stats.outcomes.exact_leaf, 800);
    }

    /// Single-flight regression: a stampede of concurrent misses on one
    /// item must run inference and write the store exactly once — the KV
    /// version stays 1 no matter how many callers raced.
    #[test]
    fn read_through_stampede_bumps_version_once() {
        for _round in 0..20 {
            let store = Arc::new(KvStore::new());
            let api = Arc::new(ServingApi::new(model(), store.clone(), 10));
            let barrier = Arc::new(std::sync::Barrier::new(8));
            let mut handles = Vec::new();
            for _ in 0..8 {
                let api = api.clone();
                let barrier = barrier.clone();
                handles.push(std::thread::spawn(move || {
                    barrier.wait();
                    api.serve(42, "widget gadget pro", LeafId(1))
                }));
            }
            let answers: Vec<Served> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            // One write, no matter how the 8 callers interleaved.
            assert_eq!(store.get(42).unwrap().version, 1, "stampede bumped the version");
            // Everyone got the same keyphrases, each from a valid source.
            for s in &answers {
                assert_eq!(s.keyphrases, answers[0].keyphrases);
                assert_ne!(s.source, ServeSource::None);
            }
            let stats = api.stats();
            assert_eq!(stats.read_throughs, 1, "exactly one leader ran inference");
            assert_eq!(
                stats.read_throughs + stats.coalesced + stats.store_hits,
                8,
                "all callers accounted for"
            );
        }
    }

    /// Operators can see which model is serving: fixed apis report
    /// version 0; registry-backed apis follow publishes live.
    #[test]
    fn stats_expose_snapshot_version_and_swaps() {
        let fixed = ServingApi::new(model(), Arc::new(KvStore::new()), 10);
        assert_eq!(fixed.stats().snapshot_version, 0);
        assert_eq!(fixed.stats().model_swaps, 0);

        let root = std::env::temp_dir()
            .join(format!("graphex-api-registry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let registry = crate::ModelRegistry::open(&root).unwrap();
        registry.publish(&model(), "first").unwrap();
        let api = ServingApi::with_watch(
            registry.watch().unwrap(),
            Arc::new(KvStore::new()),
            10,
        );
        let served = api.serve(1, "widget gadget pro", LeafId(1));
        assert_ne!(served.source, ServeSource::None);
        assert_eq!(api.stats().snapshot_version, 1);
        assert_eq!(api.stats().model_swaps, 0);

        // Republish: the api observes the swap without reconstruction.
        registry.publish(&model(), "second").unwrap();
        let served = api.serve(2, "widget gadget pro", LeafId(1));
        assert_ne!(served.source, ServeSource::None);
        assert_eq!(api.stats().snapshot_version, 2);
        assert_eq!(api.stats().model_swaps, 1);
        std::fs::remove_dir_all(&root).ok();
    }

    /// PR 3 gotcha fix: under [`SwapPolicy::Invalidate`], a cached answer
    /// computed by a withdrawn snapshot is recomputed on the next request
    /// instead of being served forever; the default policy keeps the
    /// Fig. 7 serve-stale behaviour.
    #[test]
    fn invalidate_policy_recomputes_after_swap_and_rollback() {
        let root = std::env::temp_dir()
            .join(format!("graphex-api-swap-policy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let registry = crate::ModelRegistry::open(&root).unwrap();
        registry.publish(&model(), "v1").unwrap();

        let store = Arc::new(KvStore::new());
        let api = ServingApi::with_watch(registry.watch().unwrap(), store.clone(), 10)
            .swap_policy(SwapPolicy::Invalidate);

        // Read-through under snapshot 1 tags the record.
        let first = api.serve(5, "widget gadget pro", LeafId(1));
        assert_eq!(first.source, ServeSource::ReadThrough);
        assert_eq!(store.get(5).unwrap().snapshot_version, 1);
        // Same snapshot: a plain store hit.
        assert_eq!(api.serve(5, "widget gadget pro", LeafId(1)).source, ServeSource::Store);

        // Hot swap to snapshot 2: the cached record is stale, so the next
        // request recomputes and re-tags it.
        registry.publish(&model(), "v2").unwrap();
        let after_swap = api.serve(5, "widget gadget pro", LeafId(1));
        assert_eq!(after_swap.source, ServeSource::ReadThrough);
        assert_eq!(store.get(5).unwrap().snapshot_version, 2);
        assert_eq!(store.get(5).unwrap().version, 2, "record was overwritten once");

        // Rollback to snapshot 1: the version-2 record is stale again —
        // a rollback cannot leave withdrawn-model answers serving.
        registry.rollback().unwrap();
        let after_rollback = api.serve(5, "widget gadget pro", LeafId(1));
        assert_eq!(after_rollback.source, ServeSource::ReadThrough);
        assert_eq!(store.get(5).unwrap().snapshot_version, 1);
        let stats = api.stats();
        assert_eq!(stats.invalidated, 2);
        assert_eq!(stats.store_hits, 1);
        assert_eq!(stats.read_throughs, 3);

        // The default policy serves the cached answer across a swap.
        let lax_store = Arc::new(KvStore::new());
        let lax = ServingApi::with_watch(registry.watch().unwrap(), lax_store.clone(), 10);
        lax.serve(5, "widget gadget pro", LeafId(1));
        registry.publish(&model(), "v3").unwrap();
        assert_eq!(lax.serve(5, "widget gadget pro", LeafId(1)).source, ServeSource::Store);
        assert_eq!(lax.stats().invalidated, 0);
        std::fs::remove_dir_all(&root).ok();
    }

    /// The frontend gauges ride `ServeStats`: shed / deadline-exceeded
    /// counters and the in-flight gauge with its RAII guard.
    #[test]
    fn frontend_gauges_are_recorded() {
        let api = ServingApi::new(model(), Arc::new(KvStore::new()), 10);
        assert_eq!(api.stats().in_flight, 0);
        {
            let _a = api.begin_request();
            let _b = api.begin_request();
            assert_eq!(api.stats().in_flight, 2);
        }
        assert_eq!(api.stats().in_flight, 0);
        api.note_shed();
        api.note_shed();
        api.note_deadline_exceeded();
        let stats = api.stats();
        assert_eq!((stats.shed, stats.deadline_exceeded), (2, 1));
    }

    /// The tentpole read-path property: an upsert is servable on the very
    /// next request, including for an item whose answer was already
    /// cached (the overlay epoch tag invalidates it), and for a leaf the
    /// base snapshot has never seen.
    #[test]
    fn upsert_is_servable_and_invalidates_cached_answers() {
        let store = Arc::new(KvStore::new());
        let api = ServingApi::new(model(), store.clone(), 10)
            .with_overlay(Arc::new(crate::overlay::OverlayStore::new()));

        // Cache an answer for item 7 before any upsert.
        let before = api.serve(7, "widget gadget pro", LeafId(1));
        assert_eq!(before.source, ServeSource::ReadThrough);
        assert_eq!(store.get(7).unwrap().overlay_epoch, 0);

        // Upsert a new keyphrase into leaf 1: the cached record is stale.
        let ack = api
            .apply_upsert(&[KeyphraseRecord::new("widget gadget ultra", LeafId(1), 999, 1)])
            .unwrap();
        assert_eq!(ack.seq, 1);
        let after = api.serve(7, "widget gadget ultra", LeafId(1));
        assert_eq!(after.source, ServeSource::ReadThrough, "cached answer was invalidated");
        assert!(after.keyphrases.iter().any(|k| k == "widget gadget ultra"));
        assert_eq!(store.get(7).unwrap().overlay_epoch, 1, "write-back re-tagged the record");
        assert_eq!(api.stats().overlay_invalidated, 1);

        // The re-tagged record is a plain store hit now.
        assert_eq!(api.serve(7, "widget gadget ultra", LeafId(1)).source, ServeSource::Store);

        // A brand-new leaf the snapshot never saw serves from the overlay.
        api.apply_upsert(&[KeyphraseRecord::new("quantum doohickey", LeafId(42), 50, 5)])
            .unwrap();
        let novel = api.serve(8, "quantum doohickey deluxe", LeafId(42));
        assert_eq!(novel.outcome, Outcome::ExactLeaf);
        assert_eq!(novel.keyphrases, ["quantum doohickey"]);
    }

    /// Draining after a compaction publish keeps answers stable: entries
    /// absorbed by the new snapshot leave the overlay, late upserts stay.
    #[test]
    fn drain_after_publish_keeps_late_upserts_serving() {
        let root = std::env::temp_dir()
            .join(format!("graphex-api-overlay-drain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let registry = crate::ModelRegistry::open(&root).unwrap();
        registry.publish(&model(), "base").unwrap();
        let api = ServingApi::with_watch(registry.watch().unwrap(), Arc::new(KvStore::new()), 10)
            .with_overlay(Arc::new(crate::overlay::OverlayStore::new()));

        api.apply_upsert(&[KeyphraseRecord::new("quantum doohickey", LeafId(42), 50, 5)])
            .unwrap();
        let journal = api.export_overlay_journal().unwrap();
        assert_eq!(journal.upto, 1);

        // Compact: rebuild the union corpus and publish it, then drain.
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        config.build_meta_fallback = false;
        let compacted = Arc::new(
            GraphExBuilder::new(config)
                .add_record(KeyphraseRecord::new("widget gadget pro", LeafId(1), 50, 5))
                .add_records(journal.records())
                .build()
                .unwrap(),
        );
        // A late upsert races the publish; it must survive the drain.
        api.apply_upsert(&[KeyphraseRecord::new("late arrival", LeafId(42), 10, 1)]).unwrap();
        registry.publish(&compacted, "compacted").unwrap();
        let report = api.drain_overlay(journal.upto).unwrap();
        assert_eq!((report.drained, report.remaining), (1, 1));

        // Absorbed entry serves from the base snapshot now; the late one
        // still serves from the overlay.
        let absorbed = api.serve(1, "quantum doohickey", LeafId(42));
        assert_eq!(absorbed.keyphrases, ["quantum doohickey"]);
        let late = api.serve(2, "late arrival", LeafId(42));
        assert!(late.keyphrases.iter().any(|k| k == "late arrival"));
        assert_eq!(api.overlay_status().unwrap().depth, 1);
        std::fs::remove_dir_all(&root).ok();
    }

    /// Upserting through an api without an overlay is a typed error, and
    /// a full overlay sheds with the retryable cap error.
    #[test]
    fn upsert_errors_are_typed() {
        let api = ServingApi::new(model(), Arc::new(KvStore::new()), 10);
        assert!(matches!(
            api.apply_upsert(&[KeyphraseRecord::new("x y", LeafId(1), 1, 1)]),
            Err(OverlayError::Invalid(_))
        ));

        let tiny = ServingApi::new(model(), Arc::new(KvStore::new()), 10)
            .with_overlay(Arc::new(crate::overlay::OverlayStore::with_cap(16)));
        tiny.apply_upsert(&[KeyphraseRecord::new("fits", LeafId(1), 1, 1)]).ok();
        assert!(matches!(
            tiny.apply_upsert(&[KeyphraseRecord::new("over the cap now", LeafId(1), 1, 1)]),
            Err(OverlayError::CapExceeded { .. })
        ));
    }

    /// Unservable single-flight: coalesced followers of an unservable
    /// leader also see an unservable answer, and nothing is stored.
    #[test]
    fn stampede_on_unservable_item_stores_nothing() {
        let store = Arc::new(KvStore::new());
        let api = Arc::new(ServingApi::new(model(), store.clone(), 10));
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let api = api.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    api.serve(13, "zz qq", LeafId(999))
                })
            })
            .collect();
        for h in handles {
            let served = h.join().unwrap();
            assert!(served.keyphrases.is_empty());
            assert_eq!(served.outcome, Outcome::UnknownLeaf);
            // Unservable stays `None` even for coalesced followers, so
            // caller fallback logic never depends on race timing.
            assert_eq!(served.source, ServeSource::None);
        }
        assert!(store.is_empty());
        let stats = api.stats();
        assert_eq!(stats.unservable, 4);
        assert_eq!(stats.coalesced, 0);
    }
}

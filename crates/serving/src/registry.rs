//! Model lifecycle: versioned snapshot store + atomic hot-swap.
//!
//! The paper's production story (Sec. IV-H, Fig. 7) republishes models
//! continuously — a daily batch refresh plus NRT updates — while serving
//! stays live. This module is the missing lifecycle layer: a
//! [`ModelRegistry`] manages a snapshot directory
//!
//! ```text
//! <root>/
//!   CURRENT           ← decimal version of the active snapshot (atomic rename)
//!   3/
//!     model.gexm      ← GEXM snapshot (v2 preferred; v1 accepted)
//!     MANIFEST        ← key<space>value lines: checksum, counts, metadata
//!   4/ …
//! ```
//!
//! and drives every snapshot through the same admission pipeline:
//! **load → validate → warm up → swap**. The swap is an epoch-counted
//! `Arc` pointer flip behind a read-write lock: readers grab the current
//! [`ActiveModel`] with one read-lock clone and keep serving on it for as
//! long as they hold the `Arc`, so in-flight requests always finish on
//! the model they started with, and a failed load/validation/warm-up
//! leaves the previous model serving untouched.
//!
//! Consumers don't talk to the registry directly — they hold a
//! [`ModelWatch`], a cheap poll-based handle that the serving API, batch
//! pipeline, and NRT service resolve per request/window, so a `publish`
//! or `rollback` propagates without restarting anything.

use graphex_core::serialize::{self, LoadMode, SnapshotInfo};
use graphex_core::{Engine, GraphExError, GraphExModel, InferRequest};
use parking_lot::{Mutex, RwLock};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors surfaced by the model lifecycle layer.
#[derive(Debug)]
pub enum RegistryError {
    Io(std::io::Error),
    /// The snapshot failed structural validation (or a model-format error).
    Model(GraphExError),
    /// The registry holds no snapshots yet.
    NoSnapshots,
    /// No snapshot directory for this version.
    UnknownVersion(u64),
    /// Nothing older than the current version to roll back to.
    NothingToRollBack,
    /// A MANIFEST is missing, unparsable, or disagrees with the snapshot
    /// bytes (e.g. checksum mismatch).
    Manifest(String),
    /// Warm-up probes failed: the snapshot loads but cannot answer.
    Warmup(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "registry i/o error: {e}"),
            Self::Model(e) => write!(f, "snapshot rejected: {e}"),
            Self::NoSnapshots => write!(f, "registry holds no snapshots"),
            Self::UnknownVersion(v) => write!(f, "no snapshot with version {v}"),
            Self::NothingToRollBack => write!(f, "no older snapshot to roll back to"),
            Self::Manifest(what) => write!(f, "manifest error: {what}"),
            Self::Warmup(what) => write!(f, "warm-up failed: {what}"),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RegistryError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<GraphExError> for RegistryError {
    fn from(e: GraphExError) -> Self {
        Self::Model(e)
    }
}

/// Convenience alias for registry operations.
pub type RegistryResult<T> = std::result::Result<T, RegistryError>;

/// Manifest of one published snapshot (the `MANIFEST` file, parsed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Registry version (directory name).
    pub version: u64,
    /// GEXM format version inside the snapshot (1 or 2).
    pub format: u32,
    /// FNV-1a of the whole `model.gexm` file.
    pub checksum: u64,
    pub leaves: u64,
    pub keyphrases: u64,
    pub size_bytes: u64,
    /// Unix seconds at publish time.
    pub created_unix: u64,
    /// Free-form build metadata (source dataset, pipeline run id, …).
    pub note: String,
}

impl SnapshotMeta {
    fn render(&self) -> String {
        format!(
            "version {}\nformat {}\nchecksum {:016x}\nleaves {}\nkeyphrases {}\nsize_bytes {}\ncreated_unix {}\nnote {}\n",
            self.version,
            self.format,
            self.checksum,
            self.leaves,
            self.keyphrases,
            self.size_bytes,
            self.created_unix,
            self.note
        )
    }

    fn parse(text: &str, version: u64) -> RegistryResult<Self> {
        let mut meta = SnapshotMeta {
            version,
            format: 0,
            checksum: 0,
            leaves: 0,
            keyphrases: 0,
            size_bytes: 0,
            created_unix: 0,
            note: String::new(),
        };
        let mut stated_version = version;
        for line in text.lines() {
            let (key, value) = line.split_once(' ').unwrap_or((line, ""));
            let num = || -> RegistryResult<u64> {
                value.parse().map_err(|_| RegistryError::Manifest(format!("bad {key}: {value:?}")))
            };
            match key {
                "version" => stated_version = num()?,
                "format" => meta.format = num()? as u32,
                "checksum" => {
                    meta.checksum = u64::from_str_radix(value, 16).map_err(|_| {
                        RegistryError::Manifest(format!("bad checksum: {value:?}"))
                    })?;
                }
                "leaves" => meta.leaves = num()?,
                "keyphrases" => meta.keyphrases = num()?,
                "size_bytes" => meta.size_bytes = num()?,
                "created_unix" => meta.created_unix = num()?,
                "note" => meta.note = value.to_string(),
                _ => {} // forward-compatible: ignore unknown keys
            }
        }
        if stated_version != version {
            return Err(RegistryError::Manifest(format!(
                "manifest version {stated_version} does not match directory {version}"
            )));
        }
        if meta.format == 0 {
            return Err(RegistryError::Manifest("missing format line".into()));
        }
        Ok(meta)
    }
}

/// The model currently serving: snapshot version + a shared [`Engine`]
/// (model + scratch pool). In-flight holders keep the old `ActiveModel`
/// alive across a swap; it is freed when the last request drops it.
#[derive(Debug)]
pub struct ActiveModel {
    pub version: u64,
    pub engine: Engine,
    pub meta: SnapshotMeta,
    /// Which storage backend holds the snapshot bytes: `Mmap` borrows
    /// the page cache (resident set grows only with pages touched, and
    /// is shared across processes mapping the same file), `Heap` is a
    /// private anonymous copy.
    pub load_mode: LoadMode,
}

/// Shared hot-swap state between a registry and all of its watches.
#[derive(Debug)]
struct Shared {
    active: RwLock<Option<Arc<ActiveModel>>>,
    /// Bumps on every successful activation; `epoch - 1` is the number of
    /// swaps observed since the first model went live.
    epoch: AtomicU64,
}

/// Poll-based consumer handle onto a registry's active model.
///
/// Cloning is cheap; [`ModelWatch::current`] is one read-lock `Arc`
/// clone, suitable for per-request resolution. Consumers that want to
/// notice republishes without holding the lock compare
/// [`ModelWatch::epoch`] snapshots.
#[derive(Debug, Clone)]
pub struct ModelWatch {
    shared: Arc<Shared>,
}

impl ModelWatch {
    /// The model currently serving.
    ///
    /// Infallible by construction: a watch can only be created once a
    /// snapshot is active, and activation never clears the slot.
    pub fn current(&self) -> Arc<ActiveModel> {
        self.shared
            .active
            .read()
            .clone()
            .expect("watch exists only after a snapshot was activated")
    }

    /// Version of the active snapshot.
    pub fn version(&self) -> u64 {
        self.current().version
    }

    /// Activation epoch; increments on every publish/rollback/activate.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Number of hot swaps since the first activation.
    pub fn swap_count(&self) -> u64 {
        self.epoch().saturating_sub(1)
    }

    /// A watch serving one fixed engine forever (no registry): lets every
    /// consumer take a `ModelWatch` without caring whether a lifecycle
    /// manager sits behind it. Version reports 0, epoch stays 1.
    pub fn fixed(engine: Engine) -> Self {
        let meta = SnapshotMeta {
            version: 0,
            format: serialize::VERSION_V2,
            checksum: 0,
            leaves: 0,
            keyphrases: 0,
            size_bytes: 0,
            created_unix: 0,
            note: "fixed engine (no registry)".into(),
        };
        Self {
            shared: Arc::new(Shared {
                active: RwLock::new(Some(Arc::new(ActiveModel {
                    version: 0,
                    engine,
                    meta,
                    load_mode: LoadMode::Heap,
                }))),
                epoch: AtomicU64::new(1),
            }),
        }
    }
}

/// What the admission warm-up observed before a snapshot went live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmupReport {
    /// Probe inferences executed (per-leaf).
    pub probes: usize,
    /// Probes that produced servable predictions.
    pub servable: usize,
}

/// Versioned snapshot directory + epoch-pointer hot-swap (see module
/// docs).
#[derive(Debug)]
pub struct ModelRegistry {
    root: PathBuf,
    shared: Arc<Shared>,
    /// Preferred snapshot storage backend for activations (mmap with
    /// heap fallback by default).
    load_mode: LoadMode,
    /// Serializes write operations (publish / activate / rollback / gc)
    /// within this process: concurrent publishers would otherwise race
    /// on version allocation, staging directories, and the
    /// CURRENT-file-vs-memory ordering. (Cross-process publishers are
    /// not coordinated; the staging rename fails loudly if two collide.)
    write_lock: Mutex<()>,
}

const MODEL_FILE: &str = "model.gexm";
const MANIFEST_FILE: &str = "MANIFEST";
const CURRENT_FILE: &str = "CURRENT";

impl ModelRegistry {
    /// Opens (creating if needed) a snapshot directory and activates the
    /// snapshot named by `CURRENT` — or, if that one is missing or fails
    /// admission, the newest snapshot that does load, so a corrupted
    /// latest snapshot never bricks the registry. An empty directory
    /// opens successfully with no active model — the first
    /// [`ModelRegistry::publish`] activates. The error returned when
    /// *no* snapshot is loadable is the failure of the preferred one.
    pub fn open(root: impl AsRef<Path>) -> RegistryResult<Self> {
        Self::open_with_mode(root, LoadMode::default())
    }

    /// [`ModelRegistry::open`] with an explicit snapshot storage
    /// backend: `LoadMode::Mmap` (the default) borrows activations off
    /// the page cache, `LoadMode::Heap` forces private copies (the
    /// pre-mmap behaviour; also the bench baseline).
    pub fn open_with_mode(root: impl AsRef<Path>, load_mode: LoadMode) -> RegistryResult<Self> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        let registry = Self {
            root,
            shared: Arc::new(Shared { active: RwLock::new(None), epoch: AtomicU64::new(0) }),
            load_mode,
            write_lock: Mutex::new(()),
        };
        let versions = registry.versions()?;
        if versions.is_empty() {
            return Ok(registry);
        }
        // Boot order: CURRENT first, then newest-to-oldest.
        let preferred = registry.read_current_file().filter(|v| versions.contains(v));
        let mut candidates: Vec<u64> = preferred.into_iter().collect();
        candidates.extend(versions.iter().rev().filter(|v| Some(**v) != preferred));
        let mut first_err = None;
        for version in candidates {
            match registry.activate(version) {
                Ok(_) => return Ok(registry),
                Err(e) => first_err.get_or_insert(e),
            };
        }
        Err(first_err.expect("at least one candidate was tried"))
    }

    /// Opens the snapshot directory **without activating anything**: no
    /// model load, no warm-up, and `CURRENT` is never touched. This is
    /// the handle for read-only operations (`list`, `manifest`,
    /// `verify`, `gc`) — tooling that inspects a registry another
    /// process serves from must not re-run admission as a side effect.
    pub fn attach(root: impl AsRef<Path>) -> RegistryResult<Self> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(Self {
            root,
            shared: Arc::new(Shared { active: RwLock::new(None), epoch: AtomicU64::new(0) }),
            load_mode: LoadMode::default(),
            write_lock: Mutex::new(()),
        })
    }

    /// The storage backend this registry requests for activations. The
    /// backend that actually served a given activation is on
    /// [`ActiveModel::load_mode`] (mmap can degrade to heap).
    pub fn load_mode(&self) -> LoadMode {
        self.load_mode
    }

    /// The version an `open()` of this directory would activate first:
    /// `CURRENT` if it names an existing snapshot, else the newest one.
    /// Unlike [`ModelRegistry::current_version`] this needs no activation,
    /// so it works on an [`ModelRegistry::attach`]ed handle.
    pub fn pinned_version(&self) -> Option<u64> {
        let versions = self.versions().unwrap_or_default();
        self.read_current_file()
            .filter(|v| versions.contains(v))
            .or_else(|| versions.last().copied())
    }

    /// The snapshot directory this registry manages.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// All snapshot versions on disk, ascending.
    pub fn versions(&self) -> RegistryResult<Vec<u64>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            if let Some(v) = entry.file_name().to_str().and_then(|s| s.parse::<u64>().ok()) {
                if entry.path().join(MODEL_FILE).is_file() {
                    out.push(v);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Manifests of every snapshot, ascending by version.
    pub fn list(&self) -> RegistryResult<Vec<SnapshotMeta>> {
        self.versions()?.into_iter().map(|v| self.manifest(v)).collect()
    }

    /// The parsed manifest of one version.
    pub fn manifest(&self, version: u64) -> RegistryResult<SnapshotMeta> {
        let path = self.version_dir(version).join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            RegistryError::Manifest(format!("{}: {e}", path.display()))
        })?;
        SnapshotMeta::parse(&text, version)
    }

    /// The currently active model, if any snapshot has been activated.
    pub fn current(&self) -> Option<Arc<ActiveModel>> {
        self.shared.active.read().clone()
    }

    /// Version of the active snapshot.
    pub fn current_version(&self) -> Option<u64> {
        self.current().map(|a| a.version)
    }

    /// Activation epoch (0 before the first activation).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// A consumer handle; requires an active snapshot.
    pub fn watch(&self) -> RegistryResult<ModelWatch> {
        if self.shared.active.read().is_none() {
            return Err(RegistryError::NoSnapshots);
        }
        Ok(ModelWatch { shared: Arc::clone(&self.shared) })
    }

    /// Publishes a freshly built model: writes `model.gexm` (v2) +
    /// `MANIFEST` under the next version, then admits it (load →
    /// validate → warm up → swap). Returns the new snapshot's manifest.
    pub fn publish(&self, model: &GraphExModel, note: &str) -> RegistryResult<SnapshotMeta> {
        self.publish_bytes(&serialize::to_bytes(model), note)
    }

    /// Publishes an already-serialized snapshot file (any supported GEXM
    /// version; bytes are stored verbatim). This is the CLI ingest path.
    pub fn publish_file(&self, path: impl AsRef<Path>, note: &str) -> RegistryResult<SnapshotMeta> {
        let bytes = std::fs::read(path)?;
        self.publish_bytes(&bytes, note)
    }

    /// Publishes serialized snapshot bytes together with sidecar files
    /// (e.g. the build pipeline's `BUILDINFO` manifest), staged and
    /// renamed atomically with the snapshot so a version directory is
    /// always complete. Sidecar names must be plain file names and may
    /// not collide with the registry's own files.
    pub fn publish_with_files(
        &self,
        bytes: &[u8],
        note: &str,
        extras: &[(&str, &[u8])],
    ) -> RegistryResult<SnapshotMeta> {
        for (name, _) in extras {
            let reserved = [MODEL_FILE, MANIFEST_FILE, CURRENT_FILE].contains(name);
            if reserved || name.is_empty() || name.contains(['/', '\\']) {
                return Err(RegistryError::Manifest(format!("invalid sidecar file name {name:?}")));
            }
        }
        self.publish_bytes_with(bytes, note, extras)
    }

    fn publish_bytes(&self, bytes: &[u8], note: &str) -> RegistryResult<SnapshotMeta> {
        self.publish_bytes_with(bytes, note, &[])
    }

    fn publish_bytes_with(
        &self,
        bytes: &[u8],
        note: &str,
        extras: &[(&str, &[u8])],
    ) -> RegistryResult<SnapshotMeta> {
        let _writer = self.write_lock.lock();
        // Validate *before* anything lands in the registry directory.
        let info = serialize::inspect(bytes)?;
        let version = self.versions()?.last().copied().unwrap_or(0) + 1;
        let meta = SnapshotMeta {
            version,
            format: info.version,
            checksum: serialize::checksum(bytes),
            leaves: info.num_leaves,
            keyphrases: info.num_keyphrases,
            size_bytes: bytes.len() as u64,
            created_unix: unix_now(),
            note: sanitize_note(note),
        };

        // Stage the whole snapshot directory, then publish it with one
        // rename — a crashed publish leaves a `.staging-*` dir, never a
        // half-written version.
        let staging = self.root.join(format!(".staging-{version}"));
        let _ = std::fs::remove_dir_all(&staging);
        std::fs::create_dir_all(&staging)?;
        serialize::write_bytes_to(bytes, staging.join(MODEL_FILE))?;
        std::fs::write(staging.join(MANIFEST_FILE), meta.render())?;
        for (name, content) in extras {
            std::fs::write(staging.join(name), content)?;
        }
        std::fs::rename(&staging, self.version_dir(version))?;

        // Admission failed (deep structural parse or warm-up): withdraw
        // the snapshot so a rejected publish never lingers as the newest
        // on-disk version (it would poison later `gc`/`rollback` picks).
        if let Err(e) = self.activate_locked(version) {
            let _ = std::fs::remove_dir_all(self.version_dir(version));
            return Err(e);
        }
        Ok(meta)
    }

    /// Loads, validates, warms up, and atomically swaps in `version`.
    ///
    /// On any failure the previously active model keeps serving. On
    /// success, `CURRENT` is updated so the choice survives restarts, and
    /// every [`ModelWatch`] observes the new model on its next poll while
    /// in-flight holders of the old `Arc` finish undisturbed.
    pub fn activate(&self, version: u64) -> RegistryResult<Arc<ActiveModel>> {
        let _writer = self.write_lock.lock();
        self.activate_locked(version)
    }

    fn activate_locked(&self, version: u64) -> RegistryResult<Arc<ActiveModel>> {
        let dir = self.version_dir(version);
        if !dir.join(MODEL_FILE).is_file() {
            return Err(RegistryError::UnknownVersion(version));
        }
        let meta = self.manifest(version)?;

        // Load + validate: whole-file checksum against the manifest, then
        // the (zero-copy for v2) structural parse. The mmap-vs-heap
        // choice changes only who owns the pages — both backends hand
        // `from_shared` one aligned buffer, and the checksum pass below
        // reads every byte either way, so corruption is caught before
        // the swap regardless of backend. Mapping the file is safe here
        // because version directories are staged-then-renamed and never
        // rewritten in place.
        let model_path = dir.join(MODEL_FILE);
        let (bytes, load_mode) = serialize::read_snapshot(&model_path, self.load_mode)?;
        let actual = serialize::checksum(&bytes);
        if actual != meta.checksum {
            return Err(RegistryError::Manifest(format!(
                "{}: checksum mismatch for version {version}: manifest {:016x}, file {actual:016x}",
                model_path.display(),
                meta.checksum
            )));
        }
        let model = serialize::from_shared(bytes).map_err(|e| e.with_path(&model_path))?;

        // Warm up: probe inferences touch the graph pages and prove the
        // engine answers before any traffic sees the snapshot.
        let engine = Engine::from_model(model);
        self.warm_up(&engine)?;

        // Persist the choice *before* the swap: if the CURRENT write
        // fails, the error honours the "previous model keeps serving"
        // contract; the in-memory flip after this point cannot fail.
        self.write_current_file(version)?;

        // Atomic epoch-pointer swap.
        let active = Arc::new(ActiveModel { version, engine, meta, load_mode });
        *self.shared.active.write() = Some(Arc::clone(&active));
        self.shared.epoch.fetch_add(1, Ordering::AcqRel);
        Ok(active)
    }

    /// Swaps back to the newest snapshot older than the current one.
    /// Returns `(from, to)` versions.
    pub fn rollback(&self) -> RegistryResult<(u64, u64)> {
        let _writer = self.write_lock.lock();
        let from = self.current_version().ok_or(RegistryError::NoSnapshots)?;
        let to = self
            .versions()?
            .into_iter()
            .rfind(|&v| v < from)
            .ok_or(RegistryError::NothingToRollBack)?;
        self.activate_locked(to)?;
        Ok((from, to))
    }

    /// Deletes old snapshots, keeping the newest `keep_n` plus (always)
    /// the serving one — the in-memory active version *and* whatever
    /// `CURRENT` pins on disk, so an attached (read-only) handle can
    /// never collect the snapshot another process boots from. Returns
    /// the versions removed.
    pub fn gc(&self, keep_n: usize) -> RegistryResult<Vec<u64>> {
        let _writer = self.write_lock.lock();
        let versions = self.versions()?;
        let protected = [self.current_version(), self.pinned_version()];
        let keep_from = versions.len().saturating_sub(keep_n.max(1));
        let mut removed = Vec::new();
        for &v in &versions[..keep_from] {
            if protected.contains(&Some(v)) {
                continue;
            }
            std::fs::remove_dir_all(self.version_dir(v))?;
            removed.push(v);
        }
        Ok(removed)
    }

    /// Re-reads a snapshot from disk and fully validates it (manifest
    /// checksum + structural parse), without touching the active model.
    pub fn verify(&self, version: u64) -> RegistryResult<SnapshotInfo> {
        let dir = self.version_dir(version);
        if !dir.join(MODEL_FILE).is_file() {
            return Err(RegistryError::UnknownVersion(version));
        }
        let meta = self.manifest(version)?;
        let model_path = dir.join(MODEL_FILE);
        let bytes = serialize::read_aligned(&model_path).map_err(|e| e.with_path(&model_path))?;
        let actual = serialize::checksum(&bytes);
        if actual != meta.checksum {
            return Err(RegistryError::Manifest(format!(
                "{}: checksum mismatch for version {version}: manifest {:016x}, file {actual:016x}",
                model_path.display(),
                meta.checksum
            )));
        }
        // One full structural parse; the info view is derived from the
        // already-validated model + header (no second parse, no second
        // checksum scan).
        let model = serialize::from_shared(bytes.clone()).map_err(|e| e.with_path(&model_path))?;
        Ok(serialize::inspect_model(&model, &bytes))
    }

    fn warm_up(&self, engine: &Engine) -> RegistryResult<WarmupReport> {
        let model = engine.model();
        // Probe each leaf with one of its *own* curated keyphrases as the
        // title: a healthy leaf graph must answer servably for a phrase it
        // contains, so zero servable probes means a dead snapshot, not an
        // unlucky probe. The sample is the three *smallest* leaf ids —
        // deterministic, so admission never depends on hash-map order.
        let mut probe_leaves: Vec<_> = model.leaf_ids().collect();
        probe_leaves.sort_unstable();
        let mut report = WarmupReport { probes: 0, servable: 0 };
        for leaf in probe_leaves.into_iter().take(3) {
            let graph = model.leaf_graph(leaf).expect("listed leaf has a graph");
            if graph.num_labels() == 0 {
                continue;
            }
            let title = model.keyphrase_text(graph.keyphrase_id(0)).unwrap_or_default();
            let response = engine.infer(&InferRequest::new(title, leaf).k(5));
            report.probes += 1;
            if response.is_servable() {
                report.servable += 1;
            }
        }
        if report.probes == 0 {
            return Err(RegistryError::Warmup("model has no leaf graphs to probe".into()));
        }
        if report.servable == 0 {
            return Err(RegistryError::Warmup(format!(
                "0 of {} probe inferences produced servable predictions",
                report.probes
            )));
        }
        Ok(report)
    }

    fn version_dir(&self, version: u64) -> PathBuf {
        self.root.join(version.to_string())
    }

    fn read_current_file(&self) -> Option<u64> {
        std::fs::read_to_string(self.root.join(CURRENT_FILE)).ok()?.trim().parse().ok()
    }

    fn write_current_file(&self, version: u64) -> RegistryResult<()> {
        // tmp + rename so a crash never leaves a torn CURRENT.
        let tmp = self.root.join(".CURRENT.tmp");
        std::fs::write(&tmp, format!("{version}\n"))?;
        std::fs::rename(&tmp, self.root.join(CURRENT_FILE))?;
        Ok(())
    }
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Manifest values live on single `key value` lines.
fn sanitize_note(note: &str) -> String {
    note.replace(['\n', '\r'], " ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_core::{GraphExBuilder, GraphExConfig, KeyphraseRecord, LeafId};

    fn model(tag: u32) -> GraphExModel {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        GraphExBuilder::new(config)
            .add_records((0..6u32).map(|i| {
                KeyphraseRecord::new(
                    format!("brand{tag} widget model{i}"),
                    LeafId(i % 2),
                    100 + i,
                    10,
                )
            }))
            .build()
            .unwrap()
    }

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("graphex-registry-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn publish_activates_and_lists() {
        let root = tempdir("publish");
        let registry = ModelRegistry::open(&root).unwrap();
        assert!(registry.current().is_none());
        assert!(matches!(registry.watch(), Err(RegistryError::NoSnapshots)));

        let meta = registry.publish(&model(1), "daily batch #1").unwrap();
        assert_eq!(meta.version, 1);
        assert_eq!(meta.format, 2);
        assert_eq!(registry.current_version(), Some(1));
        assert_eq!(registry.epoch(), 1);

        let meta2 = registry.publish(&model(2), "daily batch #2").unwrap();
        assert_eq!(meta2.version, 2);
        assert_eq!(registry.current_version(), Some(2));
        assert_eq!(registry.epoch(), 2);

        let listed = registry.list().unwrap();
        assert_eq!(listed.iter().map(|m| m.version).collect::<Vec<_>>(), [1, 2]);
        assert_eq!(listed[0].note, "daily batch #1");
        assert!(listed.iter().all(|m| m.leaves == 2 && m.keyphrases == 6));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn watch_observes_swap_and_old_arc_survives() {
        let root = tempdir("watch");
        let registry = ModelRegistry::open(&root).unwrap();
        registry.publish(&model(1), "").unwrap();
        let watch = registry.watch().unwrap();
        let before = watch.current();
        assert_eq!(before.version, 1);
        assert_eq!(watch.swap_count(), 0);

        registry.publish(&model(2), "").unwrap();
        let after = watch.current();
        assert_eq!(after.version, 2);
        assert_eq!(watch.swap_count(), 1);
        // The pre-swap Arc still answers: in-flight requests finish on
        // the old model.
        let resp = before
            .engine
            .infer(&InferRequest::new("brand1 widget model0", LeafId(0)).k(3).resolve_texts(true));
        assert!(resp.is_servable());
        assert!(resp.texts.iter().any(|t| t.contains("brand1")));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn rollback_restores_previous_and_persists() {
        let root = tempdir("rollback");
        let registry = ModelRegistry::open(&root).unwrap();
        registry.publish(&model(1), "").unwrap();
        registry.publish(&model(2), "").unwrap();
        assert_eq!(registry.rollback().unwrap(), (2, 1));
        assert_eq!(registry.current_version(), Some(1));
        assert!(matches!(registry.rollback(), Err(RegistryError::NothingToRollBack)));

        // A fresh open honours CURRENT (the rollback), not max-version.
        drop(registry);
        let reopened = ModelRegistry::open(&root).unwrap();
        assert_eq!(reopened.current_version(), Some(1));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn gc_keeps_newest_and_current() {
        let root = tempdir("gc");
        let registry = ModelRegistry::open(&root).unwrap();
        for i in 1..=4 {
            registry.publish(&model(i), "").unwrap();
        }
        // Roll back to 3 so current != newest.
        registry.rollback().unwrap();
        let removed = registry.gc(1);
        assert_eq!(removed.unwrap(), [1, 2]);
        assert_eq!(registry.versions().unwrap(), [3, 4]);
        // The active version survived even though keep_n=1 would drop it.
        assert_eq!(registry.current_version(), Some(3));
        std::fs::remove_dir_all(&root).ok();
    }

    /// Regression: `gc` must never delete the currently-active or
    /// pinned snapshot, even under the most aggressive `keep_n` and
    /// even when active, pinned, and newest are three different
    /// versions. (A gc that collects the serving snapshot turns the
    /// next restart — or the next tenant re-admission — into an
    /// outage.)
    #[test]
    fn gc_never_deletes_active_or_pinned_version() {
        let root = tempdir("gc-guard");
        let registry = ModelRegistry::open(&root).unwrap();
        for i in 1..=5 {
            registry.publish(&model(i), "").unwrap();
        }
        // Active = 2 (in memory), CURRENT pin rewritten to 3 behind the
        // registry's back (as a concurrent process would), newest = 5.
        registry.activate(2).unwrap();
        std::fs::write(root.join("CURRENT"), "3\n").unwrap();
        assert_eq!(registry.current_version(), Some(2));
        assert_eq!(registry.pinned_version(), Some(3));

        // keep_n = 0 is the hostile case: clamped to 1, and both the
        // active and pinned versions survive regardless.
        let removed = registry.gc(0).unwrap();
        assert_eq!(removed, [1, 4]);
        assert_eq!(registry.versions().unwrap(), [2, 3, 5]);
        // The active snapshot still serves and a reopen still boots.
        assert!(registry.current().unwrap().engine.model().num_keyphrases() > 0);
        drop(registry);
        assert_eq!(ModelRegistry::open(&root).unwrap().current_version(), Some(3));
        std::fs::remove_dir_all(&root).ok();
    }

    /// Activations default to the mmap backend and stay zero-copy; a
    /// heap-mode registry serves identical answers.
    #[test]
    fn activation_is_mmap_backed_and_heap_equivalent() {
        let root = tempdir("mmap-mode");
        let registry = ModelRegistry::open(&root).unwrap();
        assert_eq!(registry.load_mode(), LoadMode::Mmap);
        registry.publish(&model(1), "").unwrap();
        let active = registry.current().unwrap();
        assert_eq!(active.load_mode, LoadMode::Mmap);
        let m = active.engine.model();
        assert!(m.leaf_ids().all(|l| m.leaf_graph(l).unwrap().is_zero_copy()));

        let heap = ModelRegistry::open_with_mode(&root, LoadMode::Heap).unwrap();
        let heap_active = heap.current().unwrap();
        assert_eq!(heap_active.load_mode, LoadMode::Heap);
        let req = InferRequest::new("brand1 widget model0", LeafId(0)).k(5).resolve_texts(true);
        let a = active.engine.infer(&req);
        let b = heap_active.engine.infer(&req);
        assert_eq!(a.texts, b.texts);
        assert_eq!(a.predictions, b.predictions);
        std::fs::remove_dir_all(&root).ok();
    }

    /// Load failures name the offending snapshot file (the fleet serves
    /// many tenants; "checksum mismatch" alone is undebuggable).
    #[test]
    fn load_errors_carry_the_snapshot_path() {
        let root = tempdir("errpath");
        let registry = ModelRegistry::open(&root).unwrap();
        registry.publish(&model(1), "").unwrap();

        // Corrupt the bytes *and* refresh the manifest checksum so the
        // failure comes from the structural parse, not the manifest.
        let path = root.join("1").join(MODEL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let n = bytes.len();
        let sum = graphex_core::serialize::checksum(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let manifest = registry.manifest(1).unwrap();
        let mut fixed = manifest.clone();
        fixed.checksum = graphex_core::serialize::checksum(&bytes);
        std::fs::write(root.join("1").join(MANIFEST_FILE), fixed.render()).unwrap();

        let err = registry.activate(1).unwrap_err();
        assert!(matches!(err, RegistryError::Model(GraphExError::Corrupt(_))), "{err}");
        assert!(err.to_string().contains("model.gexm"), "path missing from: {err}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_snapshot_is_rejected_and_old_model_keeps_serving() {
        let root = tempdir("corrupt");
        let registry = ModelRegistry::open(&root).unwrap();
        registry.publish(&model(1), "").unwrap();

        // Corrupt version 2's bytes on disk after manifest creation: flip
        // a byte. Manifest checksum catches it.
        let meta = registry.publish(&model(2), "").unwrap();
        let path = root.join("2").join(MODEL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(meta.version, 2);

        assert!(matches!(registry.activate(2), Err(RegistryError::Manifest(_))));
        // Still serving the model that was active before the bad activate.
        assert_eq!(registry.current_version(), Some(2));
        let verify = registry.verify(2);
        assert!(matches!(verify, Err(RegistryError::Manifest(_))));
        assert!(registry.verify(1).is_ok());

        // A reopened registry falls back past the corrupt CURRENT to the
        // newest snapshot that still loads — a bad latest snapshot never
        // bricks the registry.
        drop(registry);
        let reopened = ModelRegistry::open(&root).unwrap();
        assert_eq!(reopened.current_version(), Some(1));
        std::fs::remove_dir_all(&root).ok();
    }

    /// A publish that passes the cheap pre-stage inspection but fails
    /// deep admission must be withdrawn from disk: a rejected snapshot
    /// may never linger as the newest version (it would poison later
    /// `gc`/`rollback`/boot picks).
    #[test]
    fn rejected_publish_is_withdrawn_from_disk() {
        let root = tempdir("withdraw");
        let registry = ModelRegistry::open(&root).unwrap();
        registry.publish(&model(1), "good").unwrap();

        // Craft checksum-valid but structurally broken v2 bytes: smash a
        // directory entry's kind, then rewrite the FNV trailer so only
        // the deep parse (inside activate) can catch it.
        let mut bytes = graphex_core::serialize::to_bytes(&model(2)).to_vec();
        let dir_offset =
            u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        bytes[dir_offset..dir_offset + 4].copy_from_slice(&99u32.to_le_bytes());
        let n = bytes.len();
        let sum = graphex_core::serialize::checksum(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        let bad = root.join("bad.gexm");
        std::fs::write(&bad, &bytes).unwrap();

        assert!(matches!(registry.publish_file(&bad, ""), Err(RegistryError::Model(_))));
        // Version 2 was withdrawn; version 1 still serves and is still
        // the newest on-disk snapshot, so gc/rollback stay sane.
        assert_eq!(registry.versions().unwrap(), [1]);
        assert_eq!(registry.current_version(), Some(1));
        // The next good publish reuses the freed version number.
        let meta = registry.publish(&model(3), "good again").unwrap();
        assert_eq!(meta.version, 2);
        std::fs::remove_dir_all(&root).ok();
    }

    /// Read-only attach: no activation, `CURRENT` untouched, but gc
    /// still refuses to collect the pinned snapshot.
    #[test]
    fn attach_is_read_only_and_gc_protects_pinned() {
        let root = tempdir("attach");
        let registry = ModelRegistry::open(&root).unwrap();
        for i in 1..=3 {
            registry.publish(&model(i), "").unwrap();
        }
        registry.rollback().unwrap(); // CURRENT = 2
        drop(registry);

        let ro = ModelRegistry::attach(&root).unwrap();
        assert!(ro.current().is_none(), "attach must not activate");
        assert_eq!(ro.pinned_version(), Some(2));
        assert_eq!(ro.list().unwrap().len(), 3);
        // keep_n=1 would keep only v3, but the pinned v2 is protected.
        assert_eq!(ro.gc(1).unwrap(), [1]);
        assert_eq!(ro.versions().unwrap(), [2, 3]);
        assert_eq!(
            std::fs::read_to_string(root.join("CURRENT")).unwrap().trim(),
            "2",
            "attach/gc must not rewrite CURRENT"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn publish_with_files_stages_sidecars_with_the_snapshot() {
        let root = tempdir("sidecar");
        let registry = ModelRegistry::open(&root).unwrap();
        let bytes = graphex_core::serialize::to_bytes(&model(1));
        let meta = registry
            .publish_with_files(&bytes, "pipeline build", &[("BUILDINFO", b"fingerprints\n")])
            .unwrap();
        assert_eq!(meta.version, 1);
        assert_eq!(
            std::fs::read(root.join("1").join("BUILDINFO")).unwrap(),
            b"fingerprints\n"
        );
        // Reserved / path-escaping sidecar names are rejected before
        // anything lands on disk.
        for bad in ["model.gexm", "MANIFEST", "CURRENT", "", "a/b"] {
            let res = registry.publish_with_files(&bytes, "", &[(bad, b"x" as &[u8])]);
            assert!(matches!(res, Err(RegistryError::Manifest(_))), "{bad:?} accepted");
        }
        assert_eq!(registry.versions().unwrap(), [1]);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn publish_file_accepts_v1_snapshots() {
        let root = tempdir("v1file");
        let registry = ModelRegistry::open(&root).unwrap();
        let m = model(7);
        let v1_path = root.join("legacy.gexm");
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(&v1_path, graphex_core::serialize::to_bytes_v1(&m)).unwrap();
        let meta = registry.publish_file(&v1_path, "migrated from v1").unwrap();
        assert_eq!(meta.format, 1);
        assert_eq!(registry.current_version(), Some(1));
        let active = registry.current().unwrap();
        let resp = active
            .engine
            .infer(&InferRequest::new("brand7 widget model3", LeafId(1)).k(3));
        assert!(resp.is_servable());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn fixed_watch_reports_version_zero() {
        let watch = ModelWatch::fixed(Engine::from_model(model(1)));
        assert_eq!(watch.version(), 0);
        assert_eq!(watch.swap_count(), 0);
        let resp = watch
            .current()
            .engine
            .infer(&InferRequest::new("brand1 widget model0", LeafId(0)).k(1));
        assert!(resp.is_servable());
    }
}

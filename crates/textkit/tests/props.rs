//! Property-based tests for the text substrate.

use graphex_textkit::{normalize_into, stem, Tokenizer, TokenizerBuilder, Vocab};
use proptest::prelude::*;

proptest! {
    /// Normalization output never contains uppercase ASCII, doubled spaces,
    /// or edge spaces — the contract `split(' ')` tokenization relies on.
    #[test]
    fn normalize_invariants(input in ".{0,200}") {
        let mut out = String::new();
        normalize_into(&input, &mut out);
        prop_assert!(!out.bytes().any(|b| b.is_ascii_uppercase()));
        prop_assert!(!out.contains("  "));
        prop_assert!(!out.starts_with(' '));
        prop_assert!(!out.ends_with(' '));
    }

    /// Normalization is idempotent.
    #[test]
    fn normalize_idempotent(input in ".{0,200}") {
        let mut once = String::new();
        normalize_into(&input, &mut once);
        let mut twice = String::new();
        normalize_into(&once, &mut twice);
        prop_assert_eq!(once, twice);
    }

    /// The stemmer only ever removes a suffix (borrowed variant), so the
    /// stem is always a prefix of the word.
    #[test]
    fn stem_is_prefix(word in "[a-z]{1,20}") {
        let s = stem(&word);
        prop_assert!(word.starts_with(s));
        prop_assert!(!s.is_empty());
    }

    /// Tokenizing the space-join of the tokens reproduces the tokens
    /// (tokenization is a projection).
    #[test]
    fn tokenize_projection(input in "[ a-z0-9,.!-]{0,200}") {
        let tok = Tokenizer::default();
        let first: Vec<String> = tok.tokenize(&input).collect();
        let rejoined = first.join(" ");
        let second: Vec<String> = tok.tokenize(&rejoined).collect();
        prop_assert_eq!(first, second);
    }

    /// Title/query token identity: any word sequence tokenizes identically
    /// whether it arrives as a title or as a keyphrase (same tokenizer).
    #[test]
    fn consistent_identity_with_stemming(words in prop::collection::vec("[a-z]{2,10}", 1..8)) {
        let tok = TokenizerBuilder::new().stemming(true).build();
        let joined = words.join(" ");
        let a: Vec<String> = tok.tokenize(&joined).collect();
        let b: Vec<String> = tok.tokenize(&joined.to_uppercase()).collect();
        prop_assert_eq!(a, b);
    }

    /// Vocab: interning any sequence and resolving returns the originals.
    #[test]
    fn vocab_roundtrip(words in prop::collection::vec("[a-z0-9]{1,12}", 0..50)) {
        let mut v = Vocab::new();
        let ids: Vec<u32> = words.iter().map(|w| v.intern(w)).collect();
        for (w, id) in words.iter().zip(&ids) {
            prop_assert_eq!(v.resolve(*id), Some(w.as_str()));
        }
        // Dense: vocabulary size equals number of distinct words.
        let distinct: std::collections::HashSet<_> = words.iter().collect();
        prop_assert_eq!(v.len(), distinct.len());
    }
}

//! Tokenization of titles and keyphrases.
//!
//! Default scheme per the paper (Sec. III-C fn. 3): space-delimited tokens
//! over a normalized string. Stemming is optional and off by default; the
//! GraphEx builder turns it on for both keyphrases and titles so token
//! identity stays consistent (the one invariant the paper requires).

use crate::normalize::normalize_into;
use crate::stem::stem_owned;

/// Configurable tokenizer. Cheap to clone; construction does no work.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    stemming: bool,
    max_token_len: usize,
}

impl Default for Tokenizer {
    fn default() -> Self {
        TokenizerBuilder::new().build()
    }
}

/// Builder for [`Tokenizer`].
#[derive(Debug, Clone)]
pub struct TokenizerBuilder {
    stemming: bool,
    max_token_len: usize,
}

impl TokenizerBuilder {
    pub fn new() -> Self {
        Self { stemming: false, max_token_len: 64 }
    }

    /// Enables the light suffix stemmer of [`crate::stem()`].
    pub fn stemming(mut self, on: bool) -> Self {
        self.stemming = on;
        self
    }

    /// Tokens longer than this are truncated (defensive bound against
    /// pathological inputs; real product tokens are far shorter).
    pub fn max_token_len(mut self, len: usize) -> Self {
        self.max_token_len = len.max(1);
        self
    }

    pub fn build(self) -> Tokenizer {
        Tokenizer { stemming: self.stemming, max_token_len: self.max_token_len }
    }
}

impl Default for TokenizerBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl Tokenizer {
    /// Tokenizes `text`, yielding owned normalized tokens.
    ///
    /// Owned tokens are the right interface here: every consumer immediately
    /// interns them into a [`crate::Vocab`], and stemming can rewrite the
    /// suffix so a borrowed iterator can't represent all outputs.
    pub fn tokenize<'a>(&'a self, text: &'a str) -> TokenIter<'a> {
        let mut normalized = String::new();
        normalize_into(text, &mut normalized);
        TokenIter { tokenizer: self, normalized, pos: 0 }
    }

    /// Tokenizes into a caller-provided buffer of token strings, reusing
    /// both the buffer and its element allocations where possible.
    pub fn tokenize_into(&self, text: &str, out: &mut Vec<String>) {
        out.clear();
        for tok in self.tokenize(text) {
            out.push(tok);
        }
    }

    fn finish_token(&self, raw: &str) -> String {
        let clipped = if raw.len() > self.max_token_len {
            // Truncate at a char boundary at or below the limit.
            let mut end = self.max_token_len;
            while !raw.is_char_boundary(end) {
                end -= 1;
            }
            &raw[..end]
        } else {
            raw
        };
        if self.stemming {
            stem_owned(clipped)
        } else {
            clipped.to_string()
        }
    }
}

/// Iterator over the tokens of one input string.
pub struct TokenIter<'a> {
    tokenizer: &'a Tokenizer,
    normalized: String,
    pos: usize,
}

impl Iterator for TokenIter<'_> {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        let rest = &self.normalized[self.pos..];
        if rest.is_empty() {
            return None;
        }
        match rest.find(' ') {
            Some(idx) => {
                let tok = &rest[..idx];
                self.pos += idx + 1;
                Some(self.tokenizer.finish_token(tok))
            }
            None => {
                self.pos = self.normalized.len();
                Some(self.tokenizer.finish_token(rest))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tokenization() {
        let tok = Tokenizer::default();
        let toks: Vec<String> = tok.tokenize("Audeze Maxwell gaming headphones for Xbox").collect();
        assert_eq!(toks, ["audeze", "maxwell", "gaming", "headphones", "for", "xbox"]);
    }

    #[test]
    fn stemming_unifies_plurals() {
        let tok = TokenizerBuilder::new().stemming(true).build();
        let title: Vec<String> = tok.tokenize("gaming headphones").collect();
        let query: Vec<String> = tok.tokenize("gaming headphone").collect();
        assert_eq!(title, query);
    }

    #[test]
    fn empty_input() {
        let tok = Tokenizer::default();
        assert_eq!(tok.tokenize("").count(), 0);
        assert_eq!(tok.tokenize("  ,,, ").count(), 0);
    }

    #[test]
    fn long_token_truncated_on_char_boundary() {
        let tok = TokenizerBuilder::new().max_token_len(4).build();
        let toks: Vec<String> = tok.tokenize("ééééééé abc").collect();
        assert_eq!(toks[0].len(), 4); // two 2-byte chars
        assert_eq!(toks[1], "abc");
    }

    #[test]
    fn tokenize_into_reuses_buffer() {
        let tok = Tokenizer::default();
        let mut buf = Vec::new();
        tok.tokenize_into("a b c", &mut buf);
        assert_eq!(buf, ["a", "b", "c"]);
        tok.tokenize_into("d", &mut buf);
        assert_eq!(buf, ["d"]);
    }

    #[test]
    fn punctuation_becomes_boundaries() {
        let tok = Tokenizer::default();
        let toks: Vec<String> = tok.tokenize("wi-fi 6E (tri-band)").collect();
        assert_eq!(toks, ["wi", "fi", "6e", "tri", "band"]);
    }
}

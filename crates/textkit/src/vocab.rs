//! String interning.
//!
//! Maps strings to dense `u32` ids and back. Used for the global token
//! vocabulary and the global keyphrase table; all cross-crate identifiers in
//! the workspace are interned ids, never strings (paper Sec. III-F).

use crate::fxhash::FxHashMap;

/// Dense id of an interned string.
pub type TokenId = u32;

/// Append-only string interner.
///
/// Ids are assigned in first-seen order starting at 0, so they can index
/// plain `Vec`s in downstream structures. Lookup is O(1) amortized; resolve
/// is O(1).
#[derive(Debug, Default, Clone)]
pub struct Vocab {
    map: FxHashMap<Box<str>, TokenId>,
    strings: Vec<Box<str>>,
}

impl Vocab {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            map: FxHashMap::with_capacity_and_hasher(cap, Default::default()),
            strings: Vec::with_capacity(cap),
        }
    }

    /// Interns `s`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, s: impl AsRef<str>) -> TokenId {
        let s = s.as_ref();
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("vocab overflow: > u32::MAX strings");
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, id);
        id
    }

    /// Id of `s` if it was interned before.
    pub fn get(&self, s: impl AsRef<str>) -> Option<TokenId> {
        self.map.get(s.as_ref()).copied()
    }

    /// The string for `id`, if valid.
    pub fn resolve(&self, id: TokenId) -> Option<&str> {
        self.strings.get(id as usize).map(|s| &**s)
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates `(id, string)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TokenId, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (i as TokenId, &**s))
    }

    /// Approximate heap footprint in bytes (for model-size accounting,
    /// paper Fig. 6b).
    pub fn heap_bytes(&self) -> usize {
        let strings: usize = self.strings.iter().map(|s| s.len()).sum();
        // map stores cloned boxes: count their bytes + entry overhead.
        strings * 2 + self.strings.len() * (std::mem::size_of::<Box<str>>() + 16)
    }
}

impl std::ops::Index<TokenId> for Vocab {
    type Output = str;

    fn index(&self, id: TokenId) -> &str {
        self.resolve(id).expect("invalid TokenId")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.intern("headphones");
        let b = v.intern("headphones");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocab::new();
        assert_eq!(v.intern("a"), 0);
        assert_eq!(v.intern("b"), 1);
        assert_eq!(v.intern("c"), 2);
        assert_eq!(v.intern("a"), 0);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut v = Vocab::new();
        let words = ["audeze", "maxwell", "gaming", "headphones"];
        let ids: Vec<TokenId> = words.iter().map(|w| v.intern(w)).collect();
        for (w, id) in words.iter().zip(&ids) {
            assert_eq!(v.resolve(*id), Some(*w));
            assert_eq!(v.get(w), Some(*id));
        }
        assert_eq!(v.resolve(99), None);
        assert_eq!(v.get("absent"), None);
    }

    #[test]
    fn index_op() {
        let mut v = Vocab::new();
        let id = v.intern("xbox");
        assert_eq!(&v[id], "xbox");
    }

    #[test]
    #[should_panic(expected = "invalid TokenId")]
    fn index_op_panics_on_bad_id() {
        let v = Vocab::new();
        let _ = &v[0];
    }

    #[test]
    fn iter_in_order() {
        let mut v = Vocab::new();
        v.intern("x");
        v.intern("y");
        let collected: Vec<(u32, String)> = v.iter().map(|(i, s)| (i, s.to_string())).collect();
        assert_eq!(collected, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }
}

//! Light rule-based English stemmer.
//!
//! Sec. IV-F1 of the paper: "We used a proprietary stemming function for
//! words to increase the reach of token matches." The exact function is not
//! published; this module substitutes a conservative suffix stemmer tuned for
//! e-commerce tokens (plurals, possessives) rather than a full Porter
//! stemmer. Conservatism matters: over-stemming merges distinct product
//! tokens ("ps" vs "p"), which hurts precision more than under-stemming
//! hurts recall.
//!
//! The function is pure and idempotent, which the property tests rely on.

/// Stems a single lowercase token, returning the stemmed prefix of `word`.
///
/// Rules (applied once, first match wins):
/// 1. `'s` / `s'` possessives are dropped.
/// 2. `sses` → `ss`, `xes`/`ches`/`shes`/`zes` → drop `es`.
/// 3. `ies` → `y` (for length > 4).
/// 4. trailing `s` is dropped when preceded by a non-`s`, non-vowel-only stem
///    of length ≥ 3 (so "bags" → "bag" but "gas" stays, "ps" stays).
///
/// Tokens with digits are never stemmed ("512gb", "ps5" are model numbers).
pub fn stem(word: &str) -> &str {
    if word.len() < 3 || word.bytes().any(|b| b.is_ascii_digit()) {
        return word;
    }
    if let Some(prefix) = word.strip_suffix("'s") {
        return prefix;
    }
    if let Some(prefix) = word.strip_suffix('\'') {
        // plural possessive "sellers'" → keep the plural, drop the mark
        return prefix;
    }
    if word.ends_with("sses") {
        return &word[..word.len() - 2];
    }
    for suf in ["xes", "ches", "shes", "zes"] {
        if word.ends_with(suf) && word.len() > suf.len() + 1 {
            return &word[..word.len() - 2];
        }
    }
    if word.len() > 4 && word.ends_with("ies") {
        // Can't return "y"-substituted slice borrowed from input; callers
        // that need the `y` form use `stem_owned`. For the borrowed fast
        // path we drop the suffix entirely, which still unifies
        // "batteries"/"batterie" style variants.
        return &word[..word.len() - 3];
    }
    if word.len() >= 4 && word.ends_with('s') && !word.ends_with("ss") && !word.ends_with("us") && !word.ends_with("is") {
        return &word[..word.len() - 1];
    }
    word
}

/// Owned variant that applies the `ies → y` substitution properly.
pub fn stem_owned(word: &str) -> String {
    if word.len() > 4 && word.ends_with("ies") && !word.bytes().any(|b| b.is_ascii_digit()) {
        let mut s = word[..word.len() - 3].to_string();
        s.push('y');
        return s;
    }
    stem(word).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plural_nouns() {
        assert_eq!(stem("headphones"), "headphone");
        assert_eq!(stem("bags"), "bag");
        assert_eq!(stem("cases"), "case");
    }

    #[test]
    fn possessives() {
        assert_eq!(stem("men's"), "men");
        assert_eq!(stem("sellers'"), "sellers"); // s' drops the apostrophe-s only
    }

    #[test]
    fn short_and_model_tokens_untouched() {
        assert_eq!(stem("ps"), "ps");
        assert_eq!(stem("ps5"), "ps5");
        assert_eq!(stem("512gb"), "512gb");
        assert_eq!(stem("xs"), "xs");
    }

    #[test]
    fn ss_us_is_endings_untouched() {
        assert_eq!(stem("glass"), "glass");
        assert_eq!(stem("bonus"), "bonus");
        assert_eq!(stem("tennis"), "tennis");
        assert_eq!(stem("gas"), "gas");
    }

    #[test]
    fn es_endings() {
        assert_eq!(stem("boxes"), "box");
        assert_eq!(stem("watches"), "watch");
        assert_eq!(stem("brushes"), "brush");
    }

    #[test]
    fn ies_endings() {
        assert_eq!(stem("batteries"), "batter");
        assert_eq!(stem_owned("batteries"), "battery");
        assert_eq!(stem_owned("accessories"), "accessory");
    }

    #[test]
    fn idempotent() {
        for w in ["headphones", "boxes", "batteries", "glass", "ps5", "watches"] {
            let once = stem_owned(w);
            let twice = stem_owned(&once);
            assert_eq!(once, twice, "stem not idempotent for {w}");
        }
    }
}

//! A fast, non-cryptographic hasher for integer-keyed hash maps.
//!
//! The per-leaf word lookup in GraphEx inference is `u32 → u32` and sits on
//! the hot path (one probe per title token). SipHash (std's default) is
//! needlessly slow for that; the well-known Fx algorithm (as used by rustc)
//! is a multiply-rotate-xor over machine words. The `rustc-hash` crate is not
//! part of this workspace's allowed dependency set, so the ~30 lines are
//! reimplemented here, byte-for-byte compatible in spirit (not in output)
//! with the original.
//!
//! HashDoS is not a concern: all keys are internally generated dense ids,
//! never attacker-controlled strings.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier (golden-ratio derived, same constant as rustc's).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Multiply-rotate hasher; state is a single `u64`.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Chunk into u64 words; the tail is zero-padded. Good enough for the
        // short keys (ids, small tuples) used throughout the workspace.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(42u32), hash_one(42u32));
        assert_eq!(hash_one("keyphrase"), hash_one("keyphrase"));
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        // Not a collision-resistance claim, just a sanity check that the
        // mixing actually happens for small integers.
        let hashes: Vec<u64> = (0u32..1000).map(hash_one).collect();
        let unique: FxHashSet<u64> = hashes.iter().copied().collect();
        assert_eq!(unique.len(), hashes.len());
    }

    #[test]
    fn byte_tail_is_hashed() {
        // Inputs differing only in the non-8-byte tail must differ.
        assert_ne!(hash_one(b"abcdefgh-x".as_slice()), hash_one(b"abcdefgh-y".as_slice()));
    }

    #[test]
    fn map_roundtrip() {
        let mut map: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..10_000u32 {
            map.insert(i, i * 2);
        }
        for i in 0..10_000u32 {
            assert_eq!(map.get(&i), Some(&(i * 2)));
        }
        assert_eq!(map.len(), 10_000);
    }

    #[test]
    fn zero_hash_state_still_mixes() {
        // A fresh hasher starts at 0; writing 0 must still move the state
        // away from colliding with "wrote nothing".
        let mut h = FxHasher::default();
        h.write_u64(0);
        assert_eq!(h.finish(), 0); // 0 rotl ^ 0 * SEED == 0: documented quirk…
        let mut h2 = FxHasher::default();
        h2.write_u64(1);
        assert_ne!(h2.finish(), 0);
    }
}

//! Text substrate for GraphEx.
//!
//! The GraphEx paper (Sec. III-C, fn. 3) allows "any tokenization scheme as
//! long as string comparison functions are well-defined and consistent".
//! This crate provides the pieces every other crate in the workspace builds
//! on:
//!
//! * [`Tokenizer`] — configurable normalization + whitespace tokenization
//!   (lowercasing, punctuation stripping, optional stemming).
//! * [`stem()`] — a light rule-based English stemmer standing in for the
//!   proprietary stemming function mentioned in Sec. IV-F1 of the paper.
//! * [`Vocab`] — a string interner mapping tokens/keyphrases to dense `u32`
//!   ids so the hot paths never touch strings (paper Sec. III-F: "words and
//!   labels are represented as unsigned integers to ... convert string
//!   comparisons to integer ones").
//! * [`FxHashMap`]/[`FxHashSet`] — std collections with a fast
//!   multiply-based hasher for integer-keyed maps on hot paths.
//!
//! # Example
//!
//! ```
//! use graphex_textkit::{Tokenizer, Vocab};
//!
//! let tok = Tokenizer::default();
//! let mut vocab = Vocab::new();
//! let ids: Vec<u32> = tok
//!     .tokenize("Audeze Maxwell Gaming Headphones, for Xbox!")
//!     .map(|t| vocab.intern(t))
//!     .collect();
//! assert_eq!(ids.len(), 6);
//! assert_eq!(vocab.resolve(ids[0]), Some("audeze"));
//! ```

pub mod fxhash;
pub mod normalize;
pub mod stem;
pub mod tokenize;
pub mod vocab;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use normalize::normalize_into;
pub use stem::stem;
pub use tokenize::{TokenIter, Tokenizer, TokenizerBuilder};
pub use vocab::{TokenId, Vocab};

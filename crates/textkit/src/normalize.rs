//! String normalization for titles and keyphrases.
//!
//! E-commerce titles are noisy: mixed case, punctuation, unicode dashes,
//! decorative symbols. Buyer queries are mostly lowercase ASCII. Consistent
//! normalization on both sides is what makes the integer token comparison of
//! the paper sound.

/// Normalizes `input` into `out` (cleared first): lowercases ASCII,
/// maps punctuation to spaces, collapses whitespace runs.
///
/// Non-ASCII alphanumerics are kept as-is (lowercased where Unicode allows a
/// 1:1 mapping); everything else becomes a separator. The output never has
/// leading/trailing spaces and never has two consecutive spaces, so a
/// downstream `split(' ')` yields clean tokens.
///
/// Writing into a caller-supplied buffer keeps batch pipelines
/// allocation-free (one workhorse `String` per thread).
pub fn normalize_into(input: &str, out: &mut String) {
    out.clear();
    out.reserve(input.len());
    let mut pending_space = false;
    for ch in input.chars() {
        let keep = ch.is_alphanumeric();
        if keep {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            if ch.is_ascii() {
                out.push(ch.to_ascii_lowercase());
            } else {
                // Unicode lowercase can expand; for token identity we take
                // every produced char.
                for lc in ch.to_lowercase() {
                    out.push(lc);
                }
            }
        } else {
            pending_space = true;
        }
    }
}

/// Convenience wrapper returning a fresh `String`.
pub fn normalize(input: &str) -> String {
    let mut out = String::new();
    normalize_into(input, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_strips_punctuation() {
        assert_eq!(normalize("Audeze Maxwell, for Xbox!"), "audeze maxwell for xbox");
    }

    #[test]
    fn collapses_whitespace() {
        assert_eq!(normalize("  a   b\t\nc  "), "a b c");
    }

    #[test]
    fn empty_and_punct_only() {
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("--- !!! ..."), "");
    }

    #[test]
    fn keeps_digits_and_mixed_tokens() {
        assert_eq!(normalize("PS5 512GB (NEW)"), "ps5 512gb new");
    }

    #[test]
    fn unicode_is_lowercased() {
        assert_eq!(normalize("Époque Straße"), "époque straße");
    }

    #[test]
    fn hyphens_split_tokens() {
        // "wi-fi" → two tokens; consistent on query & title side so identity
        // is preserved either way.
        assert_eq!(normalize("Wi-Fi dual-band"), "wi fi dual band");
    }

    #[test]
    fn reuses_buffer() {
        let mut buf = String::new();
        normalize_into("ABC", &mut buf);
        assert_eq!(buf, "abc");
        normalize_into("x", &mut buf);
        assert_eq!(buf, "x");
    }
}

# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# four gates: build, test, doc, clippy.

CARGO ?= cargo

.PHONY: build test doc clippy bench-smoke bench bench-snapshot serve-smoke bench-http bench-build bench-cluster bench-tenancy bench-overlay bench-trace bench-history cluster-smoke report ci

# Tier-1 gate, part 1.
build:
	$(CARGO) build --release

# Tier-1 gate, part 2: unit + integration + property + doc tests.
test:
	$(CARGO) test -q

# Rustdoc with warnings promoted to errors (kept warning-free).
doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --workspace --no-deps

# Lints with warnings promoted to errors, across every target.
clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

# Every criterion bench body exactly once — compile + run sanity, no timing.
bench-smoke:
	$(CARGO) bench -p graphex-bench -- --test

# Snapshot lifecycle smoke: v1 vs v2 load + swap-under-load, one pass
# each (no timing). Real numbers land in BENCH_model_store.json.
bench-snapshot:
	$(CARGO) bench -p graphex-bench --bench snapshot_lifecycle -- --test

# Network-frontend smoke: boot `graphex serve --smoke` on an ephemeral
# port, hit all four endpoints plus malformed-request probes, shut down
# gracefully. Exits non-zero on any failed probe.
serve-smoke:
	$(CARGO) run --release -p graphex-cli --bin graphex -- serve --smoke

# HTTP frontend loadgen: replay marketsim serving traffic over loopback
# with one live hot-swap mid-run; fails on any non-200 response. Records
# the BENCH_http_frontend.json datapoint.
bench-http:
	$(CARGO) run --release -p graphex-bench --bin loadgen -- \
	  --requests 4000 --connections 4 --scale cat1 \
	  --output BENCH_http_frontend.json --date $$(date +%Y-%m-%d)

# Build pipeline: sequential vs parallel vs incremental-delta builds at
# cat1/cat2 scales, with the byte-equivalence gate built in (exit 1 if
# pipeline or delta bytes ever diverge from the sequential builder).
# Records the BENCH_build_pipeline.json datapoint.
bench-build:
	$(CARGO) run --release -p graphex-bench --bin buildbench -- \
	  --reps 5 --output BENCH_build_pipeline.json --date $$(date +%Y-%m-%d)

# Scale-out serving: loadgen through the scatter-gather router, 1 vs 3
# backends, the 3-backend arm absorbing a rolling cluster-wide hot swap
# mid-run. Gates on zero 5xx and zero degraded entries cluster-wide.
# Records the BENCH_cluster.json datapoint (1-CPU container caveat
# inside: the 3-backend arm measures coordination, not speedup).
bench-cluster:
	$(CARGO) run --release -p graphex-bench --bin clusterbench -- \
	  --requests 3000 --connections 4 \
	  --output BENCH_cluster.json --date $$(date +%Y-%m-%d)

# Multi-tenant serving: fleet cold-start latency and resident bytes at
# 1/4/16 tenants, mmap vs heap snapshot backend (cold admit, evict-all,
# page-cache-warm re-admit). Records the BENCH_tenancy.json datapoint.
bench-tenancy:
	$(CARGO) run --release -p graphex-bench --bin tenancybench -- \
	  --output BENCH_tenancy.json --date $$(date +%Y-%m-%d)

# NRT overlay serving: upsert-to-servable latency for brand-new leaves
# and steady-state read-path overhead at 0%/1%/10% overlaid-leaf depth.
# Records the BENCH_overlay.json datapoint.
bench-overlay:
	$(CARGO) run --release -p graphex-bench --bin overlaybench -- \
	  --output BENCH_overlay.json --date $$(date +%Y-%m-%d)

# Request tracing overhead: interleaved tracing-off / tracing-on /
# slow-log-firing arms over loopback infer traffic; fails if the traced
# arm is >5% slower than the baseline. Records the
# BENCH_trace_overhead.json datapoint.
bench-trace:
	$(CARGO) run --release -p graphex-bench --bin tracebench -- \
	  --requests 3000 --connections 4 \
	  --output BENCH_trace_overhead.json --date $$(date +%Y-%m-%d)

# Telemetry-history overhead: interleaved history-off / history-on arms
# (the on arm sampling at 20x the production rate) over loopback infer
# traffic; fails if the sampled arm is >1% slower than the baseline.
# Records the BENCH_report_history.json datapoint.
bench-history:
	$(CARGO) run --release -p graphex-bench --bin historybench -- \
	  --requests 3000 --connections 4 \
	  --output BENCH_report_history.json --date $$(date +%Y-%m-%d)

# The observability report: compile every BENCH_*.json in the repo root,
# a live history + trace capture (in-process demo server), and a judged
# eval into one self-contained report.html — no external assets, opens
# from file://.
report:
	$(CARGO) run --release -p graphex-cli --bin graphex -- report --out report.html

# Cluster smoke: build -> per-shard snapshots -> 3 backends + router,
# then the sharded≡monolith, rolling-swap zero-5xx, and health gates.
cluster-smoke:
	$(CARGO) run --release -p graphex-cli --bin graphex -- cluster smoke

# The real (wall-clock) bench suite.
bench:
	$(CARGO) bench -p graphex-bench

# Everything CI checks, in CI order.
ci: build test doc clippy

# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# four gates: build, test, doc, clippy.

CARGO ?= cargo

.PHONY: build test doc clippy bench-smoke bench bench-snapshot ci

# Tier-1 gate, part 1.
build:
	$(CARGO) build --release

# Tier-1 gate, part 2: unit + integration + property + doc tests.
test:
	$(CARGO) test -q

# Rustdoc with warnings promoted to errors (kept warning-free).
doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --workspace --no-deps

# Lints with warnings promoted to errors, across every target.
clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

# Every criterion bench body exactly once — compile + run sanity, no timing.
bench-smoke:
	$(CARGO) bench -p graphex-bench -- --test

# Snapshot lifecycle smoke: v1 vs v2 load + swap-under-load, one pass
# each (no timing). Real numbers land in BENCH_model_store.json.
bench-snapshot:
	$(CARGO) bench -p graphex-bench --bench snapshot_lifecycle -- --test

# The real (wall-clock) bench suite.
bench:
	$(CARGO) bench -p graphex-bench

# Everything CI checks, in CI order.
ci: build test doc clippy

//! Seller onboarding: a brand-new (cold-start) listing gets keyphrase
//! recommendations the moment it's created — the scenario that motivates
//! GraphEx over click-lookup models, plus the interpretability walk of
//! Sec. III-G (every recommendation traces back to title tokens).
//!
//! ```bash
//! cargo run --release -p graphex-suite --example seller_onboarding
//! ```

use graphex_core::{Engine, GraphExBuilder, GraphExConfig, InferRequest, Outcome};
use graphex_marketsim::{CategoryDataset, CategorySpec};

fn main() {
    // A simulated marketplace with real search-log dynamics.
    println!("generating marketplace ...");
    let ds = CategoryDataset::generate(CategorySpec::tiny(0xFACE));

    // Nightly model refresh: construct GraphEx from the curated log.
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    let model = GraphExBuilder::new(config)
        .add_records(ds.keyphrase_records())
        .build()
        .expect("model");

    // A seller lists a *new* item: copy an existing product's shape but the
    // listing itself has no history anywhere (pure cold start).
    let template = &ds.marketplace.items[42];
    let title = format!("{} brand new in box", template.title);
    let leaf = template.leaf;
    println!("\nnew listing: {title:?} in {leaf}\n");

    let engine = Engine::from_model(model);
    let response = engine.infer(&InferRequest::new(&title, leaf).k(10).resolve_texts(true));
    assert_eq!(response.outcome, Outcome::ExactLeaf, "leaf is known");
    let preds = &response.predictions;

    // Interpretability: show exactly which title tokens drove each pick.
    let model = engine.model();
    let title_tokens = model.tokenize_title(&title);
    println!("{:<40} {:>6} {:>10}  explanation", "recommended keyphrase", "LTA", "searches");
    for (p, text) in preds.iter().zip(&response.texts) {
        let kp_tokens = model.tokenize_title(text);
        let matched: Vec<&str> = kp_tokens
            .iter()
            .filter(|t| title_tokens.contains(t))
            .map(String::as_str)
            .collect();
        println!(
            "{:<40} {:>6.2} {:>10}  {} of {} tokens from title: [{}]",
            text,
            p.lta(),
            p.search_count,
            p.matched,
            p.label_len,
            matched.join(", "),
        );
    }

    // Sanity: the relevance oracle agrees with most of the list.
    let oracle = ds.oracle();
    let fake_item = graphex_marketsim::catalog::Item {
        id: u32::MAX,
        product: template.product,
        leaf,
        title: title.clone(),
        popularity: 0.0,
    };
    let relevant =
        response.texts.iter().filter(|text| oracle.is_relevant(&fake_item, text)).count();
    println!("\noracle-relevant: {relevant}/{} recommendations", preds.len());
}

//! Seller onboarding over the live upsert path: a brand-new listing in
//! a brand-new leaf category becomes servable on the very next request
//! — no nightly rebuild in the loop — then nightly compaction folds the
//! overlay back into an immutable snapshot that answers identically.
//! This is the NRT overlay lifecycle end to end: upsert → serve →
//! journal → delta compaction → publish (hot-swap) → drain.
//!
//! ```bash
//! cargo run --release -p graphex-suite --example seller_onboarding
//! ```

use graphex_core::{Engine, GraphExConfig, InferRequest, KeyphraseRecord, LeafId};
use graphex_marketsim::{CategorySpec, ChurnCorpus};
use graphex_pipeline::{build, overlay_journal_source, BuildPlan, DeltaBase, MarketsimSource};
use graphex_serving::{KvStore, ModelRegistry, OverlayStore, ServingApi, SwapPolicy};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // A simulated marketplace with real search-log dynamics, built into
    // last night's immutable snapshot and published to a registry.
    println!("generating marketplace + nightly snapshot ...");
    let corpus = ChurnCorpus::new(CategorySpec::tiny(0xFACE), 0.0);
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    let plan = BuildPlan::new(config.clone()).jobs(2);
    let mut nightly =
        build(&plan, vec![Box::new(MarketsimSource::new(&corpus))]).expect("nightly build");

    let root = std::env::temp_dir()
        .join(format!("graphex-seller-onboarding-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let registry = ModelRegistry::open(&root).expect("registry");
    nightly.publish(&registry, "nightly").expect("publish");

    // The serving stack: registry watch (hot-swaps on publish) plus a
    // mutable overlay for seconds-latency onboarding.
    let api = ServingApi::with_watch(registry.watch().expect("watch"), Arc::new(KvStore::new()), 10)
        .swap_policy(SwapPolicy::Invalidate)
        .with_overlay(Arc::new(OverlayStore::new()));

    // A seller opens a leaf category the marketplace has never seen and
    // lists three items. None of this exists in the nightly snapshot.
    let leaf = LeafId(77_000);
    let listings = [
        ("handmade walnut chess set", 64u32),
        ("travel magnetic chess board", 41),
        ("weighted tournament chess pieces", 28),
    ];
    let records: Vec<KeyphraseRecord> = listings
        .iter()
        .map(|(text, searches)| KeyphraseRecord::new((*text).to_string(), leaf, *searches, 3))
        .collect();

    let started = Instant::now();
    let ack = api.apply_upsert(&records).expect("upsert");
    let title = "handmade walnut chess set with weighted pieces";
    let served = api.serve_request(&InferRequest::new(title, leaf).k(5).resolve_texts(true));
    let elapsed = started.elapsed();
    println!(
        "\nupsert ack: seq {} / {} records / overlay depth {} — servable in {elapsed:.3?}",
        ack.seq, ack.applied, ack.depth
    );
    assert!(
        served.keyphrases.iter().any(|k| k == "handmade walnut chess set"),
        "the new listing must be servable on the very next request: {:?}",
        served.keyphrases
    );

    // Interpretability carries over: every recommendation still traces
    // back to title-token overlap, straight from the overlay mini graph.
    println!("\n{:<40} {:>6} {:>10}  token overlap", "recommended keyphrase", "LTA", "searches");
    for (p, text) in served.predictions.iter().zip(&served.keyphrases) {
        println!(
            "{:<40} {:>6.2} {:>10}  {} of {} keyphrase tokens in title",
            text,
            p.lta(),
            p.search_count,
            p.matched,
            p.label_len,
        );
    }

    // Nightly compaction: export the journal, fold it into a delta build
    // over the published base (untouched leaves are borrowed), publish.
    // The in-process watch hot-swaps the serving stack; the drain then
    // empties the overlay of everything the new snapshot covers.
    let journal = api.export_overlay_journal().expect("journal");
    let mut compacted = build(
        &BuildPlan::new(config.clone()).jobs(2).delta(DeltaBase::load(&root).expect("delta base")),
        vec![Box::new(MarketsimSource::new(&corpus)), Box::new(overlay_journal_source(&journal))],
    )
    .expect("compaction build");
    let meta = compacted.publish(&registry, "overlay compaction").expect("publish v2");
    let drained = api.drain_overlay(journal.upto).expect("drain");
    let status = api.overlay_status().expect("overlay status");
    println!(
        "\ncompacted into snapshot v{} ({} leaves borrowed), drained {} — overlay depth {}",
        meta.version,
        compacted.report.leaves_reused,
        drained.drained,
        status.depth
    );
    assert_eq!(status.depth, 0, "compaction must empty the overlay");

    // The compacted snapshot answers exactly like the overlay did — and
    // exactly like a from-scratch rebuild of the union corpus would.
    let after = api.serve_request(&InferRequest::new(title, leaf).k(5).resolve_texts(true));
    assert_eq!(after.snapshot_version, meta.version, "serve must ride the hot-swapped snapshot");
    assert_eq!(after.keyphrases, served.keyphrases, "compaction must not change answers");

    let direct = build(
        &BuildPlan::new(config).jobs(1),
        vec![
            Box::new(MarketsimSource::new(&corpus)),
            Box::new(graphex_pipeline::VecSource::new("union", records)),
        ],
    )
    .expect("direct rebuild");
    assert_eq!(
        compacted.bytes.as_ref(),
        direct.bytes.as_ref(),
        "overlay-then-compact must be byte-identical to the direct rebuild"
    );
    let oracle = Engine::from_model(direct.model.clone());
    let expected = oracle.infer(&InferRequest::new(title, leaf).k(5).resolve_texts(true));
    assert_eq!(after.keyphrases, expected.texts, "served answers must match the direct engine");
    println!("\ncompacted snapshot is byte-identical to a direct rebuild; answers unchanged ✓");

    std::fs::remove_dir_all(&root).ok();
}

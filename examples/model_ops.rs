//! Model operations: the production lifecycle of Sec. IV-G/IV-H — build,
//! persist, reload, daily refresh, full + differential batch, and NRT
//! serving through the KV store.
//!
//! ```bash
//! cargo run --release -p graphex-suite --example model_ops
//! ```

use graphex_core::{serialize, GraphExBuilder, GraphExConfig, LeafId};
use graphex_marketsim::{CategoryDataset, CategorySpec};
use graphex_serving::batch::BatchItem;
use graphex_serving::{BatchPipeline, ItemEvent, KvStore, NrtConfig, NrtService};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let ds = CategoryDataset::generate(CategorySpec::tiny(0xD0D0));

    // --- construct + persist (the "daily model refresh") ------------------
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    let t0 = Instant::now();
    let model = GraphExBuilder::new(config)
        .add_records(ds.keyphrase_records())
        .build()
        .expect("build");
    println!("construction: {:?} ({} keyphrases)", t0.elapsed(), model.num_keyphrases());

    let path = std::env::temp_dir().join("graphex_model_ops.gexm");
    serialize::save_to(&model, &path).expect("save");
    println!("saved: {} bytes → {}", model.size_bytes(), path.display());
    let model = serialize::load_from(&path).expect("load");
    println!("reloaded OK (alignment {})", model.alignment());
    std::fs::remove_file(&path).ok();

    // --- full batch over the catalog --------------------------------------
    let store = KvStore::new();
    let pipeline = BatchPipeline::new(&model, &store, 20, 0);
    let items: Vec<BatchItem> = ds
        .marketplace
        .items
        .iter()
        .map(|i| BatchItem { id: i.id, title: i.title.clone(), leaf: i.leaf })
        .collect();
    let report = pipeline.run_full(&items);
    println!(
        "full batch: {} items in {} ms ({} with recommendations)",
        report.items_processed, report.elapsed_ms, report.items_with_recommendations
    );

    // --- daily differential: two items get revised -------------------------
    let mut revised = vec![items[0].clone(), items[1].clone()];
    revised[0].title = format!("{} premium edition", revised[0].title);
    let diff = pipeline.run_differential(&revised);
    println!("differential batch: {} items in {} ms", diff.items_processed, diff.elapsed_ms);
    println!("item 0 now at version {}", store.get(0).map(|r| r.version).unwrap_or_default());

    // --- NRT path for a just-created listing ------------------------------
    let model = Arc::new(model);
    let nrt_store = Arc::new(KvStore::new());
    let service = NrtService::start(model.clone(), nrt_store.clone(), NrtConfig::default());
    let new_item = &ds.marketplace.items[7];
    service.submit(ItemEvent::Created {
        id: 9_000_001,
        title: new_item.title.clone(),
        leaf: new_item.leaf,
    });
    let stats = service.shutdown();
    let recs = nrt_store.get(9_000_001).map(|r| r.keyphrases).unwrap_or_default();
    println!(
        "NRT: {} event(s) → {} keyphrases for the new listing, e.g. {:?}",
        stats.events_received,
        recs.len(),
        recs.first().map(String::as_str).unwrap_or("-"),
    );

    // Unknown leaf? Falls back to the meta-category graph (never a panic),
    // and the response outcome says the fallback answered.
    let engine = graphex_core::Engine::new(model.clone());
    let fallback = engine
        .infer(&graphex_core::InferRequest::new(&new_item.title, LeafId(u32::MAX)).k(5));
    println!(
        "fallback-graph inference for an unknown leaf: {} keyphrases (outcome: {})",
        fallback.len(),
        fallback.outcome.name()
    );
}

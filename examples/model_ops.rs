//! Model operations: the production lifecycle of Sec. IV-G/IV-H — build,
//! publish into a versioned snapshot registry, serve through a watch,
//! hot-swap a daily refresh, roll back, and run full + differential batch
//! and NRT against the live model.
//!
//! ```bash
//! cargo run --release -p graphex-suite --example model_ops
//! ```

use graphex_core::{GraphExBuilder, GraphExConfig, LeafId};
use graphex_marketsim::{CategoryDataset, CategorySpec};
use graphex_serving::batch::BatchItem;
use graphex_serving::{
    BatchPipeline, ItemEvent, KvStore, ModelRegistry, NrtConfig, NrtService, ServingApi,
};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let ds = CategoryDataset::generate(CategorySpec::tiny(0xD0D0));

    // --- construct + publish (the "daily model refresh") ------------------
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    let t0 = Instant::now();
    let model = GraphExBuilder::new(config.clone())
        .add_records(ds.keyphrase_records())
        .build()
        .expect("build");
    println!("construction: {:?} ({} keyphrases)", t0.elapsed(), model.num_keyphrases());

    let root = std::env::temp_dir().join("graphex_model_ops_registry");
    let _ = std::fs::remove_dir_all(&root);
    let registry = ModelRegistry::open(&root).expect("open registry");
    let meta = registry.publish(&model, "daily batch, cat=tiny").expect("publish");
    println!(
        "published snapshot v{} ({} bytes, GEXM v{}, checksum {:016x})",
        meta.version, meta.size_bytes, meta.format, meta.checksum
    );

    // Everything downstream consumes the watch, not the model directly.
    let watch = registry.watch().expect("watch");
    println!("reloaded zero-copy OK (alignment {})", watch.current().engine.model().alignment());

    // --- full batch over the catalog --------------------------------------
    let store = KvStore::new();
    let pipeline = BatchPipeline::with_watch(watch.clone(), &store, 20, 0);
    let items: Vec<BatchItem> = ds
        .marketplace
        .items
        .iter()
        .map(|i| BatchItem { id: i.id, title: i.title.clone(), leaf: i.leaf })
        .collect();
    let report = pipeline.run_full(&items);
    println!(
        "full batch: {} items in {} ms ({} with recommendations, scored by snapshot v{})",
        report.items_processed,
        report.elapsed_ms,
        report.items_with_recommendations,
        report.snapshot_version
    );

    // --- daily refresh: republish + hot swap under a live api -------------
    let api = ServingApi::with_watch(watch.clone(), Arc::new(KvStore::new()), 10);
    let probe = &ds.marketplace.items[3];
    let before = api.serve(u64::from(probe.id), &probe.title, probe.leaf);
    let refreshed = GraphExBuilder::new(config)
        .add_records(ds.keyphrase_records())
        .build()
        .expect("rebuild");
    registry.publish(&refreshed, "daily batch, refreshed").expect("republish");
    let after = api.serve(9_999_999, &probe.title, probe.leaf);
    let stats = api.stats();
    println!(
        "hot swap: served {} then {} keyphrases; api now on snapshot v{} ({} swap observed)",
        before.keyphrases.len(),
        after.keyphrases.len(),
        stats.snapshot_version,
        stats.model_swaps
    );

    // --- differential batch against the refreshed snapshot ----------------
    let mut revised = vec![items[0].clone(), items[1].clone()];
    revised[0].title = format!("{} premium edition", revised[0].title);
    let diff = pipeline.run_differential(&revised);
    println!(
        "differential batch: {} items in {} ms (snapshot v{})",
        diff.items_processed, diff.elapsed_ms, diff.snapshot_version
    );
    println!("item 0 now at version {}", store.get(0).map(|r| r.version).unwrap_or_default());

    // --- NRT path for a just-created listing ------------------------------
    let nrt_store = Arc::new(KvStore::new());
    let service = NrtService::start_with_watch(watch.clone(), nrt_store.clone(), NrtConfig::default());
    let new_item = &ds.marketplace.items[7];
    service.submit(ItemEvent::Created {
        id: 9_000_001,
        title: new_item.title.clone(),
        leaf: new_item.leaf,
    });
    let stats = service.shutdown();
    let recs = nrt_store.get(9_000_001).map(|r| r.keyphrases).unwrap_or_default();
    println!(
        "NRT: {} event(s) → {} keyphrases for the new listing (snapshot v{}), e.g. {:?}",
        stats.events_received,
        recs.len(),
        stats.snapshot_version,
        recs.first().map(String::as_str).unwrap_or("-"),
    );

    // --- rollback: yesterday's model comes back with one pointer flip -----
    let (from, to) = registry.rollback().expect("rollback");
    println!("rollback: v{from} → v{to}; api serves v{}", api.stats().snapshot_version);

    // Unknown leaf? Falls back to the meta-category graph (never a panic),
    // and the response outcome says the fallback answered.
    let engine = watch.current().engine.clone();
    let fallback = engine
        .infer(&graphex_core::InferRequest::new(&new_item.title, LeafId(u32::MAX)).k(5));
    println!(
        "fallback-graph inference for an unknown leaf: {} keyphrases (outcome: {})",
        fallback.len(),
        fallback.outcome.name()
    );
    std::fs::remove_dir_all(&root).ok();
}

//! Marketplace pipeline: the full study in miniature — simulate a category,
//! train GraphEx *and* the production baselines, run the paper's judged
//! evaluation, and print an RP/HP comparison (a small Table III).
//!
//! ```bash
//! cargo run --release -p graphex-suite --example marketplace_pipeline
//! ```

use graphex_baselines::fasttext::FastTextConfig;
use graphex_baselines::{
    FastTextLike, GraphExRecommender, Graphite, Recommender, RulesEngine, SlEmb, SlQuery,
};
use graphex_core::{GraphExBuilder, GraphExConfig};
use graphex_eval::{Evaluation, RelevanceJudge};
use graphex_marketsim::{CategoryDataset, CategorySpec};

fn main() {
    println!("simulating category (catalog, queries, biased click log) ...");
    let ds = CategoryDataset::generate(CategorySpec::tiny(0xBEEF));
    let stats = ds.train_log.click_stats();
    println!(
        "  items: {}  queries: {}  clicks: {}  item coverage: {:.1}%",
        ds.marketplace.items.len(),
        ds.queries.len(),
        ds.train_log.total_clicks,
        stats.coverage * 100.0
    );

    println!("training the six models of the paper's comparison ...");
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    let graphex =
        GraphExBuilder::new(config).add_records(ds.keyphrase_records()).build().expect("model");
    let models: Vec<Box<dyn Recommender>> = vec![
        Box::new(FastTextLike::train(&ds, FastTextConfig { epochs: 12, ..Default::default() })),
        Box::new(SlEmb::train(&ds, 25, 0.05)),
        Box::new(SlQuery::train(&ds, 0.2)),
        Box::new(Graphite::train(&ds, 512)),
        Box::new(RulesEngine::train(&ds, 1)),
        Box::new(GraphExRecommender::new(graphex)),
    ];

    println!("running the judged evaluation (k = 40) ...\n");
    let judge = RelevanceJudge::new(&ds);
    let items = ds.test_items(60, 11);
    let refs: Vec<&dyn Recommender> = models.iter().map(|m| m.as_ref()).collect();
    let eval = Evaluation::run(&ds, &refs, &items, 40, &judge);

    println!(
        "{:<10} {:>6} {:>9} {:>6} {:>6} {:>6} {:>6}",
        "model", "preds", "relevant", "head", "RP", "HP", "RRR"
    );
    for m in &eval.models {
        println!(
            "{:<10} {:>6} {:>9} {:>6} {:>5.1}% {:>5.1}% {:>6.2}",
            m.name,
            m.total_predictions(),
            m.relevant(),
            m.relevant_head(),
            m.rp() * 100.0,
            m.hp() * 100.0,
            eval.rrr(&m.name, "GraphEx"),
        );
    }
    println!("\n(RRR is relative to GraphEx — the paper's Table III convention)");
}

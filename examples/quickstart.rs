//! Quickstart: build a GraphEx model from curated keyphrases and recommend
//! for an item title — the paper's Figure 3 walkthrough.
//!
//! ```bash
//! cargo run --release -p graphex-suite --example quickstart
//! ```

use graphex_core::{Alignment, Engine, GraphExBuilder, GraphExConfig, InferRequest, KeyphraseRecord, LeafId};

fn main() {
    // Curated buyer queries for one leaf category ("gaming headsets"),
    // with their Search and Recall counts from the search logs.
    let leaf = LeafId(7);
    let records = vec![
        KeyphraseRecord::new("audeze maxwell", leaf, 900, 120),
        KeyphraseRecord::new("audeze headphones", leaf, 450, 300),
        KeyphraseRecord::new("gaming headphones xbox", leaf, 800, 700),
        KeyphraseRecord::new("wireless headphones xbox", leaf, 650, 800),
        KeyphraseRecord::new("bluetooth wireless headphones", leaf, 300, 900),
    ];

    // Construction phase: per-leaf bipartite word→keyphrase graphs.
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 0; // demo data is tiny; keep everything
    let model = GraphExBuilder::new(config).add_records(records).build().expect("build model");
    let stats = model.stats();
    println!(
        "model: {} keyphrases, {} tokens, {} edges, {} bytes serialized\n",
        stats.num_keyphrases,
        stats.num_tokens,
        stats.total_edges,
        model.size_bytes()
    );

    // Inference phase: Algorithm 1 (enumeration) + LTA ranking, through
    // the request/response envelope every frontend uses.
    let engine = Engine::from_model(model);
    let title = "Audeze Maxwell gaming headphones for Xbox";
    println!("item title: {title:?}\n");
    let request = InferRequest::new(title, leaf).k(10).resolve_texts(true);
    let response = engine.infer(&request);
    println!("outcome: {} ({} keyphrases)\n", response.outcome.name(), response.len());
    println!("{:<32} {:>7} {:>9} {:>8} {:>8}", "keyphrase", "LTA", "matched", "search", "recall");
    for (p, text) in response.predictions.iter().zip(&response.texts) {
        println!(
            "{:<32} {:>7.2} {:>6}/{:<2} {:>8} {:>8}",
            text,
            p.score(Alignment::Lta),
            p.matched,
            p.label_len,
            p.search_count,
            p.recall_count,
        );
    }
}
